"""Reveal-order sensitivity analysis for the online mechanisms.

The paper evaluates each online mechanism on one random reveal order per
graph.  In practice the order in which a computation reveals its accesses
is not under anyone's control, so a natural robustness question - not
studied in the paper - is how much the final clock size depends on the
order.  This module estimates that empirically: it replays the same graph
under many independently shuffled reveal orders and reports the spread of
final clock sizes per mechanism, together with the seeds of the best and
worst orders found (so a specific order can be reproduced and inspected).

Used by the extra benchmark ``benchmarks/bench_order_sensitivity.py`` and
available to library users who want to stress their own access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.analysis.metrics import SummaryStats, summarize
from repro.exceptions import ExperimentError
from repro.graph.bipartite import BipartiteGraph
from repro.offline.algorithm import optimal_clock_size
from repro.online.base import OnlineMechanism
from repro.online.simulator import reveal_order, run_mechanism

MechanismFactory = Callable[[int], OnlineMechanism]


@dataclass(frozen=True)
class SensitivityResult:
    """Spread of one mechanism's final clock size over random reveal orders."""

    mechanism: str
    stats: SummaryStats
    best_order_seed: int
    worst_order_seed: int
    offline_optimum: int

    @property
    def best(self) -> float:
        """Smallest final clock size observed."""
        return self.stats.minimum

    @property
    def worst(self) -> float:
        """Largest final clock size observed."""
        return self.stats.maximum

    @property
    def spread(self) -> float:
        """Worst minus best - how much the reveal order alone can cost."""
        return self.stats.maximum - self.stats.minimum

    def worst_case_ratio(self) -> float:
        """Worst observed size relative to the offline optimum."""
        if self.offline_optimum == 0:
            return 1.0
        return self.stats.maximum / self.offline_optimum


def order_sensitivity(
    graph: BipartiteGraph,
    factory: MechanismFactory,
    trials: int = 20,
    base_seed: int = 0,
    mechanism_name: Optional[str] = None,
) -> SensitivityResult:
    """Replay ``graph`` under ``trials`` shuffled reveal orders.

    ``factory`` receives the trial seed so stochastic mechanisms (Random)
    draw fresh randomness per trial; deterministic mechanisms simply ignore
    it.  The *same* seed also shuffles the reveal order, so a
    (mechanism seed, order) pair can be reproduced from the reported
    best/worst seeds.
    """
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if graph.num_edges == 0:
        raise ExperimentError("order sensitivity needs a graph with at least one edge")
    sizes = []
    best_seed = worst_seed = base_seed
    best_size = float("inf")
    worst_size = float("-inf")
    name = mechanism_name
    for trial in range(trials):
        seed = base_seed + trial
        mechanism = factory(seed)
        if name is None:
            name = mechanism.name
        result = run_mechanism(mechanism, reveal_order(graph, seed=seed))
        sizes.append(result.final_size)
        if result.final_size < best_size:
            best_size, best_seed = result.final_size, seed
        if result.final_size > worst_size:
            worst_size, worst_seed = result.final_size, seed
    return SensitivityResult(
        mechanism=name or "unknown",
        stats=summarize(sizes),
        best_order_seed=best_seed,
        worst_order_seed=worst_seed,
        offline_optimum=optimal_clock_size(graph),
    )


def compare_order_sensitivity(
    graph: BipartiteGraph,
    factories: Mapping[str, MechanismFactory],
    trials: int = 20,
    base_seed: int = 0,
) -> Dict[str, SensitivityResult]:
    """Run :func:`order_sensitivity` for several mechanisms on one graph."""
    return {
        label: order_sensitivity(
            graph, factory, trials=trials, base_seed=base_seed, mechanism_name=label
        )
        for label, factory in factories.items()
    }
