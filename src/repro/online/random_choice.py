"""The Random online mechanism: a fair coin per uncovered event.

"Randomly choose the associated object or thread of the new event with
equal probability" (Section IV, mechanism 2).  The coin is drawn from an
explicitly seeded :class:`random.Random` so experiment runs are exactly
reproducible and independent trials can use independent seeds.
"""

from __future__ import annotations

import random

from repro.graph.bipartite import Vertex
from repro.graph.generators import SeedLike, _rng
from repro.online.base import OBJECT, THREAD, OnlineMechanism


class RandomMechanism(OnlineMechanism):
    """Pick thread or object uniformly at random for each uncovered event.

    Parameters
    ----------
    seed:
        Seed (or a shared :class:`random.Random`) for the coin flips.
    thread_probability:
        Probability of picking the thread; ``0.5`` reproduces the paper's
        mechanism, other values are exposed for the ablation benchmarks.
    """

    name = "random"

    def __init__(self, seed: SeedLike = None, thread_probability: float = 0.5) -> None:
        super().__init__()
        if not (0.0 <= thread_probability <= 1.0):
            raise ValueError("thread_probability must be in [0, 1]")
        self._rng = _rng(seed)
        self._thread_probability = thread_probability

    @property
    def thread_probability(self) -> float:
        return self._thread_probability

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        if self._rng.random() < self._thread_probability:
            return THREAD
        return OBJECT
