"""The Popularity online mechanism: pick the more popular endpoint.

Definition 1 of the paper: the popularity of a vertex ``v`` in the revealed
bipartite graph is ``pop(v) = deg(v) / |E|``.  When an uncovered event
``(t, o)`` arrives, the mechanism adds whichever of ``t`` and ``o`` has the
higher popularity; the intuition is that a popular vertex covers more
future edges, keeping the clock small (Section IV, mechanism 3).

Since both popularities share the same denominator ``|E|``, the comparison
reduces to comparing degrees in the revealed graph *including* the new
event's edge.  Ties are broken by a configurable side (thread by default,
matching the convention that a tie gives no evidence the object will be
reused more than the thread).
"""

from __future__ import annotations

from typing import List

from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import Vertex
from repro.online.base import (
    OBJECT,
    THREAD,
    Decision,
    OnlineMechanism,
    popularity_choice,
)


class PopularityMechanism(OnlineMechanism):
    """Pick the endpoint with the higher popularity in the revealed graph.

    Parameters
    ----------
    tie_break:
        Which side to pick when thread and object have equal popularity
        (``"thread"`` by default).
    """

    name = "popularity"

    def __init__(self, tie_break: str = THREAD) -> None:
        super().__init__()
        if tie_break not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"tie_break must be {THREAD!r} or {OBJECT!r}, got {tie_break!r}"
            )
        self._tie_break = tie_break

    @property
    def tie_break(self) -> str:
        return self._tie_break

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        # observe() already added the edge, so both vertices exist and |E| > 0.
        return popularity_choice(self.revealed_graph, thread, obj, self._tie_break)

    def observe_batch(self, pairs) -> List[int]:
        """The hoisted batch loop (see the base class for the contract).

        The popularity decision is inherently sequential (each choice
        reads the degrees the previous events produced), so the batch
        win is structural: covered events - the overwhelming majority
        once the cover has warmed up - cost one graph update and one
        membership check, with no method dispatch.  Uncovered events
        still route through :func:`popularity_choice` so the policy
        (including its tie-breaking) stays byte-for-byte the paper's.
        """
        cls = type(self)
        if (
            cls._choose is not PopularityMechanism._choose
            or cls._on_observe is not OnlineMechanism._on_observe
            or cls.observe is not OnlineMechanism.observe
        ):
            return super().observe_batch(pairs)
        graph = self._graph
        add_edge = graph.add_edge
        thread_components = self._thread_components
        object_components = self._object_components
        order = self._component_order
        decisions = self._decisions
        tie_break = self._tie_break
        events_seen = self._events_seen
        sizes: List[int] = []
        append = sizes.append
        for thread, obj in pairs:
            add_edge(thread, obj)
            event_index = events_seen
            events_seen += 1
            if thread not in thread_components and obj not in object_components:
                choice = popularity_choice(graph, thread, obj, tie_break)
                if choice == THREAD:
                    component = thread
                    thread_components.add(thread)
                else:
                    component = obj
                    object_components.add(obj)
                order.append((choice, component))
                decisions.append(
                    Decision(event_index, thread, obj, choice, component)
                )
            append(len(order))
        self._events_seen = events_seen
        if len(order) > self._peak_size:
            self._peak_size = len(order)
        return sizes
