"""The Popularity online mechanism: pick the more popular endpoint.

Definition 1 of the paper: the popularity of a vertex ``v`` in the revealed
bipartite graph is ``pop(v) = deg(v) / |E|``.  When an uncovered event
``(t, o)`` arrives, the mechanism adds whichever of ``t`` and ``o`` has the
higher popularity; the intuition is that a popular vertex covers more
future edges, keeping the clock small (Section IV, mechanism 3).

Since both popularities share the same denominator ``|E|``, the comparison
reduces to comparing degrees in the revealed graph *including* the new
event's edge.  Ties are broken by a configurable side (thread by default,
matching the convention that a tie gives no evidence the object will be
reused more than the thread).
"""

from __future__ import annotations

from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import Vertex
from repro.online.base import OBJECT, THREAD, OnlineMechanism, popularity_choice


class PopularityMechanism(OnlineMechanism):
    """Pick the endpoint with the higher popularity in the revealed graph.

    Parameters
    ----------
    tie_break:
        Which side to pick when thread and object have equal popularity
        (``"thread"`` by default).
    """

    name = "popularity"

    def __init__(self, tie_break: str = THREAD) -> None:
        super().__init__()
        if tie_break not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"tie_break must be {THREAD!r} or {OBJECT!r}, got {tie_break!r}"
            )
        self._tie_break = tie_break

    @property
    def tie_break(self) -> str:
        return self._tie_break

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        # observe() already added the edge, so both vertices exist and |E| > 0.
        return popularity_choice(self.revealed_graph, thread, obj, self._tie_break)
