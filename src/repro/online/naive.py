"""The Naive online mechanism: always pick the same side.

"Always choose thread or always choose object" (Section IV, mechanism 1).
Its final clock size equals the number of distinct threads (or objects)
that appear in the computation, i.e. exactly the classical thread-based or
object-based vector clock, which is why the paper uses it as the baseline
every other mechanism is compared against.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import Vertex
from repro.online.base import OBJECT, THREAD, Decision, OnlineMechanism


class NaiveMechanism(OnlineMechanism):
    """Always choose the thread (default) or always choose the object.

    Parameters
    ----------
    side:
        ``"thread"`` to reproduce the thread-based clock, ``"object"`` for
        the object-based clock.
    """

    name = "naive"

    def __init__(self, side: str = THREAD) -> None:
        super().__init__()
        if side not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"side must be {THREAD!r} or {OBJECT!r}, got {side!r}"
            )
        self._side = side
        self.name = f"naive-{side}"

    @property
    def side(self) -> str:
        return self._side

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        return self._side

    def observe_batch(self, pairs) -> List[int]:
        """The hoisted batch loop (see the base class for the contract).

        The fixed-side policy needs no per-event state beyond the cover
        check, so the whole of :meth:`~repro.online.base.OnlineMechanism.observe`
        inlines into one loop over plain locals.  Subclasses that change
        the policy or hook into the lifecycle fall back to the
        loop-over-``observe`` base implementation, which is always
        correct.
        """
        cls = type(self)
        if (
            cls._choose is not NaiveMechanism._choose
            or cls._on_observe is not OnlineMechanism._on_observe
            or cls.observe is not OnlineMechanism.observe
        ):
            return super().observe_batch(pairs)
        add_edge = self._graph.add_edge
        thread_components = self._thread_components
        object_components = self._object_components
        order = self._component_order
        decisions = self._decisions
        side = self._side
        pick_thread = side == THREAD
        chosen = thread_components if pick_thread else object_components
        events_seen = self._events_seen
        sizes: List[int] = []
        append = sizes.append
        for thread, obj in pairs:
            add_edge(thread, obj)
            event_index = events_seen
            events_seen += 1
            if thread not in thread_components and obj not in object_components:
                component = thread if pick_thread else obj
                chosen.add(component)
                order.append((side, component))
                decisions.append(
                    Decision(event_index, thread, obj, side, component)
                )
            append(len(order))
        self._events_seen = events_seen
        # Additions are monotone within a batch (observe never retires),
        # so the end-of-batch size is the batch's peak.
        if len(order) > self._peak_size:
            self._peak_size = len(order)
        return sizes
