"""The Naive online mechanism: always pick the same side.

"Always choose thread or always choose object" (Section IV, mechanism 1).
Its final clock size equals the number of distinct threads (or objects)
that appear in the computation, i.e. exactly the classical thread-based or
object-based vector clock, which is why the paper uses it as the baseline
every other mechanism is compared against.
"""

from __future__ import annotations

from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import Vertex
from repro.online.base import OBJECT, THREAD, OnlineMechanism


class NaiveMechanism(OnlineMechanism):
    """Always choose the thread (default) or always choose the object.

    Parameters
    ----------
    side:
        ``"thread"`` to reproduce the thread-based clock, ``"object"`` for
        the object-based clock.
    """

    name = "naive"

    def __init__(self, side: str = THREAD) -> None:
        super().__init__()
        if side not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"side must be {THREAD!r} or {OBJECT!r}, got {side!r}"
            )
        self._side = side
        self.name = f"naive-{side}"

    @property
    def side(self) -> str:
        return self._side

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        return self._side
