"""The Hybrid online mechanism: Popularity early, Naive late.

Section V of the paper closes with a practical recommendation: because
Popularity (and Random) only beat Naive while the revealed graph is sparse
and small, "set thresholds for both graph density and number of nodes in
graph; at the beginning adopt the Popularity mechanism and as more events
come in adopt the Naive approach if the graph parameters exceed the
thresholds".  :class:`HybridMechanism` implements exactly that switch; the
threshold values themselves are studied by the ablation benchmark
``benchmarks/bench_hybrid_ablation.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import Vertex
from repro.online.base import (
    OBJECT,
    THREAD,
    Decision,
    OnlineMechanism,
    popularity_choice,
)


class HybridMechanism(OnlineMechanism):
    """Popularity until the revealed graph gets too dense or too big, then Naive.

    Parameters
    ----------
    density_threshold:
        Once the revealed graph's density exceeds this value, fall back to
        the Naive policy.  The paper's Fig. 4 crossover sits near 0.1-0.2
        for 50+50 nodes; the default of ``0.15`` reflects that.
    node_threshold:
        Once the revealed graph has more than this many vertices (threads
        plus objects), fall back to Naive.  Fig. 5's crossover is around 70
        nodes *per side* at density 0.05, i.e. 140 total; the default of
        ``140`` reflects that.
    naive_side:
        Which side the Naive fallback picks (thread by default).
    warmup_edges:
        The density test only applies once at least this many edges have
        been revealed.  The density of the *revealed* graph starts out
        artificially high (the first edge alone has density 1.0) and only
        converges to the computation's true density as edges accumulate, so
        without a warm-up the density threshold would trigger immediately
        on every computation.  The node threshold is not affected.
    """

    name = "hybrid"

    def __init__(
        self,
        density_threshold: float = 0.15,
        node_threshold: int = 140,
        naive_side: str = THREAD,
        warmup_edges: int = 30,
    ) -> None:
        super().__init__()
        if density_threshold < 0.0:
            raise OnlineMechanismError("density_threshold must be non-negative")
        if node_threshold < 0:
            raise OnlineMechanismError("node_threshold must be non-negative")
        if warmup_edges < 0:
            raise OnlineMechanismError("warmup_edges must be non-negative")
        if naive_side not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"naive_side must be {THREAD!r} or {OBJECT!r}, got {naive_side!r}"
            )
        self._density_threshold = density_threshold
        self._node_threshold = node_threshold
        self._naive_side = naive_side
        self._warmup_edges = warmup_edges
        self._switched_at: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def density_threshold(self) -> float:
        return self._density_threshold

    @property
    def node_threshold(self) -> int:
        return self._node_threshold

    @property
    def warmup_edges(self) -> int:
        return self._warmup_edges

    @property
    def switched_at(self) -> Optional[int]:
        """Event index at which the fallback to Naive happened, if it did."""
        return self._switched_at

    @property
    def in_naive_phase(self) -> bool:
        return self._switched_at is not None

    def _exceeds_thresholds(self) -> bool:
        graph = self.revealed_graph
        density_exceeded = (
            graph.num_edges >= self._warmup_edges
            and graph.density() > self._density_threshold
        )
        return density_exceeded or graph.num_vertices > self._node_threshold

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        if self._switched_at is None and self._exceeds_thresholds():
            self._switched_at = self.events_seen - 1
        if self._switched_at is not None:
            return self._naive_side
        return popularity_choice(self.revealed_graph, thread, obj, THREAD)

    def observe_batch(self, pairs) -> List[int]:
        """The hoisted batch loop (see the base class for the contract).

        Covered events skip all dispatch; uncovered events call
        :meth:`_choose` through ``self`` so the switch bookkeeping (and
        any subclassed threshold logic it reads) runs unmodified -
        ``_events_seen`` is written back first because ``_choose``
        records the switch point from it.
        """
        cls = type(self)
        if (
            cls._on_observe is not OnlineMechanism._on_observe
            or cls.observe is not OnlineMechanism.observe
        ):
            return super().observe_batch(pairs)
        add_edge = self._graph.add_edge
        thread_components = self._thread_components
        object_components = self._object_components
        order = self._component_order
        decisions = self._decisions
        choose = self._choose
        events_seen = self._events_seen
        sizes: List[int] = []
        append = sizes.append
        for thread, obj in pairs:
            add_edge(thread, obj)
            event_index = events_seen
            events_seen += 1
            if thread not in thread_components and obj not in object_components:
                self._events_seen = events_seen
                choice = choose(thread, obj)
                if choice == THREAD:
                    component = thread
                    thread_components.add(thread)
                elif choice == OBJECT:
                    component = obj
                    object_components.add(obj)
                else:
                    raise OnlineMechanismError(
                        f"{type(self).__name__}._choose returned {choice!r}, "
                        f"expected {THREAD!r} or {OBJECT!r}"
                    )
                order.append((choice, component))
                decisions.append(
                    Decision(event_index, thread, obj, choice, component)
                )
            append(len(order))
        self._events_seen = events_seen
        if len(order) > self._peak_size:
            self._peak_size = len(order)
        return sizes
