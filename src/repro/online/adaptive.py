"""Window-aware adaptive mechanisms: online clocks that shrink again.

Every mechanism of Section IV is append-only: a component, once adopted,
is kept forever.  Under the sliding-window streams of the monitoring
regime that is exactly wrong - the offline optimum tracks the *live*
window and dips back down as events expire, so an append-only clock's
steady-state competitive ratio degrades monotonically (visible in
``python -m repro sweep ratio``).  The two mechanisms here close that gap
through the lifecycle protocol of :class:`~repro.online.base.OnlineMechanism`
(``observe`` / ``expire`` / ``end_epoch``):

* :class:`WindowedPopularityMechanism` - the paper's Popularity policy
  for the per-event choice, plus *retirement*: it counts, per component,
  the live events the component's vertex participates in, and gives the
  slot back once the count hits zero.  *When* a dead slot is reclaimed
  is a policy (``retirement=``): ``"eager"`` retires on the expire tick
  that kills the last live event, ``"epoch"`` defers to the next epoch
  sweep, and ``"cost"`` holds a dead slot while its expected re-add cost
  (a decayed per-vertex re-add counter) still beats the rent the slot
  has accrued since death - cutting rotation *frequency* under thrashing
  vertices, not just rotation cost.  All three retire only endpoint-dead
  components, which is what keeps re-timestamping sound: a live event
  blocks the retirement of both its endpoints, so every live event keeps
  a live incrementing component and all live-pair causal verdicts
  survive the slot compaction (the invariant
  :func:`~repro.core.timestamping.verify_retimestamping` checks) - and
  what keeps every rotation this mechanism triggers a *pure retirement*,
  eligible for the :class:`~repro.core.timestamping.EpochClock`'s delta
  (projection) rotation path.

* :class:`EpochRotatingHybridMechanism` - the adaptive sibling of
  :class:`~repro.online.hybrid.HybridMechanism`.  Between boundaries it
  runs the hybrid policy on the *live* graph (Popularity while the live
  graph is small and sparse, a fixed side once thresholds are crossed);
  at each ``end_epoch`` it rebuilds its component set wholesale from the
  live window's König cover (maintained incrementally by
  :class:`~repro.graph.incremental.DynamicMatching`), so right after a
  boundary its clock is *optimal for the live window* and the hybrid
  switch restarts from the Popularity phase.

:class:`LifecycleClockDriver` is the timestamping tie-in: it couples any
lifecycle mechanism with an :class:`~repro.core.timestamping.EpochClock`,
extending the kernel when the mechanism appends a component and rotating
the epoch (replay + optional invariant check) whenever the mechanism
retires or rebuilds.  The property-test suite drives it to prove that
adaptive mechanisms preserve happened-before / concurrent verdicts for
every live-window event pair across retirements and rotations.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.timestamping import EpochClock
from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.incremental import DynamicMatching
from repro.obs.registry import active as _metrics_active
from repro.online.base import (
    OBJECT,
    THREAD,
    OnlineMechanism,
    popularity_choice,
)


def _canonical_key(vertex: Vertex) -> Tuple[str, str]:
    """The ``(type name, repr)`` ordering key shared with the simulator."""
    return (type(vertex).__name__, repr(vertex))


# -- retirement policies ------------------------------------------------------
#: Retire a dead component on the expire tick that killed its last event.
EAGER_RETIREMENT = "eager"
#: Let dead components linger until the next ``end_epoch`` sweep.
EPOCH_RETIREMENT = "epoch"
#: Epoch-sweep retirement gated by the re-add cost model (see
#: :class:`WindowedPopularityMechanism`).
COST_RETIREMENT = "cost"

#: Policies :class:`WindowedPopularityMechanism` accepts.
RETIREMENT_POLICIES = (EAGER_RETIREMENT, EPOCH_RETIREMENT, COST_RETIREMENT)

#: Per-tick decay of the re-add score (half-life of ~138 lifecycle ticks).
_COST_DECAY = 0.995
#: Rent (lifecycle ticks dead) one unit of re-add score excuses a slot
#: from paying before it is reclaimed.
_COST_GRACE_TICKS = 256.0
#: Scores decayed below this are forgotten at the next epoch sweep, so
#: the score table stays proportional to recently thrashing vertices.
_COST_SCORE_FLOOR = 1e-3
#: Minimum ticks a score ledger line survives untouched before it may be
#: pruned - long enough for a fresh retiree's zero-score line to witness
#: the re-add that would earn it a score.
_COST_TTL_TICKS = 2048


def _decay_factor(ticks: int) -> float:
    """``_COST_DECAY ** ticks`` by binary exponentiation.

    Repeated IEEE multiplication instead of ``math.pow``: the cost
    policy feeds retirement decisions, which feed component sets, which
    feed fingerprints, so the arithmetic must not depend on the
    platform's libm.
    """
    result = 1.0
    base = _COST_DECAY
    while ticks:
        if ticks & 1:
            result *= base
        base *= base
        ticks >>= 1
    return result


class WindowedPopularityMechanism(OnlineMechanism):
    """Popularity's choice policy plus retirement of window-dead components.

    Parameters
    ----------
    tie_break:
        Popularity tie side, as in
        :class:`~repro.online.popularity.PopularityMechanism` (the choice
        policy is identical on purpose, so comparing this mechanism with
        plain Popularity isolates the effect of retirement).
    eager:
        When ``True`` (default) a component is retired by the expire tick
        that kills its last live event; when ``False`` dead components
        linger until the next ``end_epoch`` sweep.  Legacy switch kept
        for callers predating ``retirement``; ignored when ``retirement``
        is given explicitly.
    retirement:
        Retirement policy: ``"eager"`` / ``"epoch"`` (the two regimes
        ``eager`` selects between) or ``"cost"``.  Under ``"cost"`` a
        dead component is only reclaimed at an epoch sweep once the rent
        it has accrued (lifecycle ticks since its last live event died)
        exceeds the grace its *re-add score* buys: a per-vertex counter
        bumped each time a previously retired vertex is adopted again,
        decayed by :data:`_COST_DECAY` per tick.  A vertex that keeps
        bouncing back earns score, so its slot survives quiet spells and
        the retire-rotate / re-add-extend churn it would otherwise cause
        disappears; a vertex that never returns has score zero and is
        reclaimed at the first sweep after death, like ``"epoch"``.  The
        policy is deterministic (pure integer tick arithmetic plus
        fixed-sequence float multiplication) and keyed into
        :meth:`summary` as ``"retirement"``.  Registered as
        ``adaptive-popularity-cost``.
    windowed_degrees:
        **Off by default** (the append-only revealed-graph policy of the
        paper).  When ``True``, the per-event choice compares *windowed*
        degree estimates instead: the number of live (non-expired) events
        each endpoint currently participates in - the degree, with
        multiplicity, of the endpoint in the live multigraph the
        retirement bookkeeping already maintains.  The append-only
        revealed graph never forgets, so under drift it keeps voting for
        endpoints whose popularity died windows ago; the windowed counter
        decays with the window and tracks the regime that is actually
        live.  Registered as ``adaptive-popularity-windowed``.
    """

    name = "adaptive-popularity"
    window_aware = True

    def __init__(
        self,
        tie_break: str = THREAD,
        eager: bool = True,
        windowed_degrees: bool = False,
        retirement: Optional[str] = None,
    ) -> None:
        super().__init__()
        if tie_break not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"tie_break must be {THREAD!r} or {OBJECT!r}, got {tie_break!r}"
            )
        if retirement is None:
            retirement = EAGER_RETIREMENT if eager else EPOCH_RETIREMENT
        if retirement not in RETIREMENT_POLICIES:
            raise OnlineMechanismError(
                f"retirement must be one of {RETIREMENT_POLICIES}, "
                f"got {retirement!r}"
            )
        self._tie_break = tie_break
        self._retirement = retirement
        self._eager = retirement == EAGER_RETIREMENT
        self._windowed_degrees = windowed_degrees
        if windowed_degrees:
            self.name = "adaptive-popularity-windowed"
        elif retirement == COST_RETIREMENT:
            self.name = "adaptive-popularity-cost"
        # Live events per endpoint vertex.  A vertex may only be retired
        # while its count is zero: that is the condition under which slot
        # compaction preserves every live-pair verdict.
        self._live_by_thread: Dict[Vertex, int] = {}
        self._live_by_object: Dict[Vertex, int] = {}
        # Cost-policy state: the tick each currently dead component's
        # vertex went dead, and the decayed re-add score per vertex as a
        # ``(score, tick-of-last-touch)`` pair (decay applied lazily).
        self._dead_thread_since: Dict[Vertex, int] = {}
        self._dead_object_since: Dict[Vertex, int] = {}
        self._readd_score: Dict[Vertex, Tuple[float, int]] = {}

    @property
    def windowed_degrees(self) -> bool:
        return self._windowed_degrees

    @property
    def retirement(self) -> str:
        """The retirement policy in force (``eager`` / ``epoch`` / ``cost``)."""
        return self._retirement

    def _tick(self) -> int:
        """The lifecycle clock the cost model meters rent in.

        Observes plus expires: a slot's rent must keep accruing while
        the stream drains (expire-heavy phases), not only while it
        grows.
        """
        return self.events_seen + self.expires_seen

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        if self._windowed_degrees:
            # Windowed popularity: live-event counts per endpoint (the
            # hook _on_observe has already counted the current event, so
            # both sides see it - mirroring how the revealed-graph policy
            # sees the just-added edge).  Shared denominator again, so
            # the comparison reduces to the counters.
            thread_live = self._live_by_thread.get(thread, 0)
            object_live = self._live_by_object.get(obj, 0)
            if thread_live > object_live:
                choice = THREAD
            elif object_live > thread_live:
                choice = OBJECT
            else:
                choice = self._tie_break
        else:
            # Same policy as PopularityMechanism: degrees in the revealed
            # (append-only) graph, which observe() has already updated.
            choice = popularity_choice(
                self.revealed_graph, thread, obj, self._tie_break
            )
        if self._retirement == COST_RETIREMENT:
            # _choose only runs for uncovered events, and the chosen side
            # is adopted immediately after it returns - so this is
            # exactly the re-add moment for a vertex with score history.
            vertex = thread if choice == THREAD else obj
            entry = self._readd_score.get(vertex)
            if entry is not None:
                score, touched = entry
                tick = self._tick()
                self._readd_score[vertex] = (
                    score * _decay_factor(tick - touched) + 1.0,
                    tick,
                )
        return choice

    # -- lifecycle hooks ----------------------------------------------------
    def _on_observe(self, thread: Vertex, obj: Vertex) -> None:
        self._live_by_thread[thread] = self._live_by_thread.get(thread, 0) + 1
        self._live_by_object[obj] = self._live_by_object.get(obj, 0) + 1
        if self._retirement == COST_RETIREMENT:
            # A dead component's vertex came back to life: it stops
            # accruing rent (and stops being a retirement candidate).
            self._dead_thread_since.pop(thread, None)
            self._dead_object_since.pop(obj, None)

    def _on_expire(self, thread: Vertex, obj: Vertex) -> None:
        for counts, vertex in (
            (self._live_by_thread, thread),
            (self._live_by_object, obj),
        ):
            count = counts.get(vertex, 0)
            if count <= 0:
                raise OnlineMechanismError(
                    f"expire of ({thread!r}, {obj!r}) retracts an occurrence "
                    f"that was never observed"
                )
            if count == 1:
                del counts[vertex]
            else:
                counts[vertex] = count - 1
        if self._eager:
            if thread not in self._live_by_thread and thread in self._thread_components:
                self._retire_component(thread)
            if obj not in self._live_by_object and obj in self._object_components:
                self._retire_component(obj)
        elif self._retirement == COST_RETIREMENT:
            # Start the rent meter; retirement itself waits for a sweep.
            tick = self._tick()
            if thread not in self._live_by_thread and thread in self._thread_components:
                self._dead_thread_since.setdefault(thread, tick)
            if obj not in self._live_by_object and obj in self._object_components:
                self._dead_object_since.setdefault(obj, tick)

    def _cost_due(self, tick: int) -> List[Vertex]:
        """Dead components whose accrued rent beats their re-add grace."""
        due = []
        for kind, component in self._component_order:
            since = (
                self._dead_thread_since if kind == THREAD
                else self._dead_object_since
            ).get(component)
            if since is None:
                continue
            entry = self._readd_score.get(component)
            if entry is not None:
                score, touched = entry
                grace = score * _decay_factor(tick - touched) * _COST_GRACE_TICKS
            else:
                grace = 0.0
            if tick - since >= grace:
                due.append(component)
        return due

    def _on_end_epoch(self) -> Tuple[Vertex, ...]:
        # With eager retirement this sweep is a no-op; with the epoch
        # policy it reclaims every dead component; with the cost policy
        # it reclaims the dead components whose rent has run out and
        # remembers them in the re-add score table.
        if self._retirement == COST_RETIREMENT:
            tick = self._tick()
            dead = self._cost_due(tick)
            dead.sort(key=_canonical_key)
            for component in dead:
                self._retire_component(component)
                self._dead_thread_since.pop(component, None)
                self._dead_object_since.pop(component, None)
                entry = self._readd_score.get(component)
                if entry is None:
                    # Open a ledger line so a future re-adoption of this
                    # vertex is recognised and scored in _choose.
                    self._readd_score[component] = (0.0, tick)
            # Forget ledger lines that have sat untouched past the TTL
            # with their score decayed to noise and no dead slot waiting,
            # so the table tracks recent thrashers instead of every
            # vertex ever retired.
            stale = [
                vertex
                for vertex, (score, touched) in self._readd_score.items()
                if tick - touched >= _COST_TTL_TICKS
                and score * _decay_factor(tick - touched) < _COST_SCORE_FLOOR
                and vertex not in self._dead_thread_since
                and vertex not in self._dead_object_since
            ]
            for vertex in stale:
                del self._readd_score[vertex]
            return tuple(dead)
        dead = [
            component
            for kind, component in self._component_order
            if (
                component not in self._live_by_thread
                if kind == THREAD
                else component not in self._live_by_object
            )
        ]
        dead.sort(key=_canonical_key)
        for component in dead:
            self._retire_component(component)
        return tuple(dead)

    def summary(self) -> Dict[str, object]:
        data = super().summary()
        data["retirement"] = self._retirement
        return data


class EpochRotatingHybridMechanism(OnlineMechanism):
    """Hybrid policy on the live graph, König-cover rebuild at epochs.

    Parameters mirror :class:`~repro.online.hybrid.HybridMechanism`
    (thresholds evaluated against the *live* graph) - except that the
    switch to the Naive side resets at every epoch boundary, because the
    rebuild restores an optimal-for-the-window component set and the
    Popularity phase is the right regime for a small live cover.
    """

    name = "epoch-hybrid"
    window_aware = True

    def __init__(
        self,
        density_threshold: float = 0.15,
        node_threshold: int = 140,
        naive_side: str = THREAD,
        warmup_edges: int = 30,
    ) -> None:
        super().__init__()
        if density_threshold < 0.0:
            raise OnlineMechanismError("density_threshold must be non-negative")
        if node_threshold < 0:
            raise OnlineMechanismError("node_threshold must be non-negative")
        if warmup_edges < 0:
            raise OnlineMechanismError("warmup_edges must be non-negative")
        if naive_side not in (THREAD, OBJECT):
            raise OnlineMechanismError(
                f"naive_side must be {THREAD!r} or {OBJECT!r}, got {naive_side!r}"
            )
        self._density_threshold = density_threshold
        self._node_threshold = node_threshold
        self._naive_side = naive_side
        self._warmup_edges = warmup_edges
        self._switched_at: Optional[int] = None
        # The live window's graph and its maximum matching / König cover,
        # maintained across inserts and expiries.
        self._live = DynamicMatching(record_trajectory=False)

    # -- introspection ------------------------------------------------------
    @property
    def live_graph(self) -> BipartiteGraph:
        """The live (non-expired) thread-object graph."""
        return self._live.graph

    @property
    def live_optimum(self) -> int:
        """Minimum vertex cover size of the live graph (the rebuild target)."""
        return self._live.cover_size

    @property
    def switched_at(self) -> Optional[int]:
        """Event index of the current epoch's switch to Naive, if any."""
        return self._switched_at

    # -- policy -------------------------------------------------------------
    def _exceeds_thresholds(self) -> bool:
        graph = self._live.graph
        density_exceeded = (
            graph.num_edges >= self._warmup_edges
            and graph.density() > self._density_threshold
        )
        return density_exceeded or graph.num_vertices > self._node_threshold

    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        if self._switched_at is None and self._exceeds_thresholds():
            self._switched_at = self.events_seen - 1
        if self._switched_at is not None:
            return self._naive_side
        return popularity_choice(self._live.graph, thread, obj, THREAD)

    # -- lifecycle hooks ----------------------------------------------------
    def _on_observe(self, thread: Vertex, obj: Vertex) -> None:
        self._live.add_edge(thread, obj)

    def _on_expire(self, thread: Vertex, obj: Vertex) -> None:
        self._live.remove_edge(thread, obj)

    def _on_end_epoch(self) -> Tuple[Vertex, ...]:
        cover = self._live.vertex_cover()
        live_graph = self._live.graph
        want_threads = {v for v in cover if live_graph.has_thread(v)}
        want_objects = {v for v in cover if live_graph.has_object(v)}
        retired = [
            component
            for kind, component in self._component_order
            if component not in (want_threads if kind == THREAD else want_objects)
        ]
        retired.sort(key=_canonical_key)
        for component in retired:
            self._retire_component(component)
        for vertex in sorted(want_threads, key=_canonical_key):
            self._add_component(THREAD, vertex)
        for vertex in sorted(want_objects, key=_canonical_key):
            self._add_component(OBJECT, vertex)
        # A fresh, window-optimal cover restarts the hybrid schedule.
        self._switched_at = None
        return tuple(retired)


class LifecycleClockDriver:
    """Issue real timestamps while a lifecycle mechanism shapes the clock.

    The driver forwards each lifecycle tick to the mechanism first, then
    mirrors the resulting component-set change onto an
    :class:`~repro.core.timestamping.EpochClock`:

    * a component *appended* by ``observe`` extends the kernel in place
      (no epoch change - existing timestamps just gain a zero slot);
    * any *retirement or rebuild* (from an expire tick or an epoch
      boundary) rotates the kernel to the mechanism's new component set,
      re-stamping the live window in the new epoch's basis - by slot
      projection when the rotation is a pure retirement, by replay
      otherwise (see :meth:`EpochClock.rotate
      <repro.core.timestamping.EpochClock.rotate>`; ``rotation=``
      forces a strategy per driver).

    With ``check_invariant=True`` every rotation replays and proves the
    re-timestamping invariant (verdict preservation over all live pairs)
    before committing - the property the test suite leans on.
    """

    def __init__(
        self,
        mechanism: OnlineMechanism,
        check_invariant: bool = False,
        rotation: Optional[str] = None,
    ) -> None:
        if mechanism.events_seen:
            raise OnlineMechanismError(
                "mechanism has already observed events; use a fresh one"
            )
        self._mechanism = mechanism
        self._clock = EpochClock(
            mechanism.components(),
            check_invariant=check_invariant,
            rotation=rotation,
        )

    # -- introspection ------------------------------------------------------
    @property
    def mechanism(self) -> OnlineMechanism:
        return self._mechanism

    @property
    def clock(self) -> EpochClock:
        return self._clock

    @property
    def clock_size(self) -> int:
        return self._mechanism.clock_size

    def live_tokens(self) -> Tuple[int, ...]:
        return self._clock.live_tokens()

    def _rotate(self, components) -> None:
        """Rotate the clock, observing the latency when telemetry is on.

        Rotation re-stamps the live window - ``O(live)`` projection on
        the delta path, an ``O(window)`` replay otherwise - and was the
        driver's dominant boundary cost (ROADMAP item 5's p99 target),
        so every rotation goes through this one timed funnel; the
        ``clock.rotation.delta`` / ``clock.rotation.replay`` counters
        say which path each rotation took.  The measurement changes
        nothing the clock computes: the registry, when installed, only
        *receives* the duration.
        """
        registry = _metrics_active()
        if registry is None:
            self._clock.rotate(components)
            return
        began = perf_counter()
        self._clock.rotate(components)
        registry.add("driver.rotations")
        registry.observe("driver.rotation_s", perf_counter() - began)

    # -- lifecycle ----------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> int:
        """Reveal one event; returns its :class:`EpochClock` token."""
        retired_before = self._mechanism.retired_total
        added = self._mechanism.observe(thread, obj)
        if self._mechanism.retired_total != retired_before:
            # No current mechanism retires on observe, but the protocol
            # does not forbid it; fall back to a full rotation.
            self._rotate(self._mechanism.components())
        elif added is not None:
            if added in self._mechanism.thread_components:
                self._clock.extend(thread_components=(added,))
            else:
                self._clock.extend(object_components=(added,))
            registry = _metrics_active()
            if registry is not None:
                registry.add("driver.extensions")
        return self._clock.observe(thread, obj)

    def expire(self, thread: Vertex, obj: Vertex) -> int:
        """Expire one live occurrence; returns the expired token."""
        retired_before = self._mechanism.retired_total
        self._mechanism.expire(thread, obj)
        token = self._clock.expire(thread, obj)
        retired_now = self._mechanism.retired_total
        if retired_now != retired_before:
            registry = _metrics_active()
            if registry is not None:
                registry.add("driver.retirements", retired_now - retired_before)
            self._rotate(self._mechanism.components())
        return token

    def end_epoch(self) -> Tuple[Vertex, ...]:
        """Deliver an epoch boundary; rotates the clock if the set changed."""
        before = self._mechanism.components()
        registry = _metrics_active()
        began = perf_counter() if registry is not None else 0.0
        retired = self._mechanism.end_epoch()
        after = self._mechanism.components()
        if after != before:
            self._rotate(after)
        if registry is not None:
            registry.observe("driver.end_epoch_s", perf_counter() - began)
            if retired:
                registry.add("driver.retirements", len(retired))
        return retired

    # -- causality queries --------------------------------------------------
    def timestamp(self, token: int):
        return self._clock.timestamp(token)

    def relation(self, token_a: int, token_b: int) -> str:
        return self._clock.relation(token_a, token_b)

    def happened_before(self, token_a: int, token_b: int) -> bool:
        return self._clock.happened_before(token_a, token_b)

    def concurrent(self, token_a: int, token_b: int) -> bool:
        return self._clock.concurrent(token_a, token_b)
