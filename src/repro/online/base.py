"""Base machinery for online mixed-vector-clock mechanisms (Section IV).

In the paper's online setting the computation is revealed one event at a
time and the existing clock components may never be removed or replaced -
only new components may be appended.  When an event ``(t, o)`` arrives
whose thread and object are both outside the current component set, the
mechanism *must* add one of the two endpoints (otherwise that event could
not be ordered); which endpoint it picks is the whole difference between
the mechanisms the paper compares:

* :class:`~repro.online.naive.NaiveMechanism` - always the thread (or
  always the object);
* :class:`~repro.online.random_choice.RandomMechanism` - a fair coin;
* :class:`~repro.online.popularity.PopularityMechanism` - whichever
  endpoint is more popular (``deg / |E|``) in the bipartite graph revealed
  so far;
* :class:`~repro.online.hybrid.HybridMechanism` - Popularity until density
  / size thresholds are crossed, then Naive (the practical recipe the paper
  suggests at the end of Section V).

The streaming extension relaxes the append-only constraint through a
*lifecycle protocol*: drivers now deliver three kinds of ticks,

* :meth:`OnlineMechanism.observe` - one revealed event (the paper's only
  hook);
* :meth:`OnlineMechanism.expire` - one previously revealed occurrence
  fell out of the monitoring window;
* :meth:`OnlineMechanism.end_epoch` - an epoch boundary, the only point
  at which a mechanism may *retire* (or wholesale rebuild) components.

The base class implements the bookkeeping for all three and defers to
hooks: :meth:`OnlineMechanism._choose` (the single policy decision, as
before) plus the no-op-by-default :meth:`OnlineMechanism._on_observe`,
:meth:`OnlineMechanism._on_expire` and :meth:`OnlineMechanism._on_end_epoch`.
Append-only mechanisms override nothing new and behave exactly as before
- expire and epoch ticks pass through the no-op shims - while the
window-aware mechanisms in :mod:`repro.online.adaptive` override the
hooks to bound their live clock to the live window.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.components import ClockComponents
from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import BipartiteGraph, Vertex

#: The two possible choices a mechanism can make for an uncovered event.
THREAD = "thread"
OBJECT = "object"


def popularity_choice(
    graph: BipartiteGraph, thread: Vertex, obj: Vertex, tie_break: str = THREAD
) -> str:
    """Definition 1's policy: pick the endpoint more popular in ``graph``.

    Shared by :class:`~repro.online.popularity.PopularityMechanism`,
    the pre-switch phase of :class:`~repro.online.hybrid.HybridMechanism`
    and the adaptive mechanisms (which apply it to their live graph).
    Both popularities share the denominator ``|E|``, so the comparison
    reduces to degrees; ties go to ``tie_break``.
    """
    thread_popularity = graph.popularity(thread)
    object_popularity = graph.popularity(obj)
    if thread_popularity > object_popularity:
        return THREAD
    if object_popularity > thread_popularity:
        return OBJECT
    return tie_break


@dataclass(frozen=True)
class Decision:
    """A log record of one component-addition decision.

    ``event_index`` is the position of the triggering event in the revealed
    stream, ``choice`` is ``"thread"`` or ``"object"`` and ``component`` is
    the vertex that was added.
    """

    event_index: int
    thread: Vertex
    obj: Vertex
    choice: str
    component: Vertex


@dataclass(frozen=True)
class Retirement:
    """A log record of one component-retirement decision.

    ``event_index`` is the number of events revealed when the component
    was retired, ``epoch`` the epoch count at that moment (epoch
    boundaries increment it *before* their retirements are logged),
    ``kind`` is ``"thread"`` or ``"object"`` and ``component`` the vertex
    whose slot was given back.
    """

    event_index: int
    epoch: int
    kind: str
    component: Vertex


class OnlineMechanism(abc.ABC):
    """Common state machine for all online mechanisms.

    Subclasses implement :meth:`_choose`, which is called exactly when a
    revealed event is not yet covered and must return ``THREAD`` or
    ``OBJECT``; lifecycle-aware subclasses additionally override the
    :meth:`_on_observe` / :meth:`_on_expire` / :meth:`_on_end_epoch`
    hooks (no-ops here, so append-only mechanisms run unchanged through
    lifecycle-delivering drivers).
    """

    #: Human-readable mechanism name, overridden by subclasses.
    name: str = "abstract"

    #: ``True`` for mechanisms that react to expire / epoch ticks by
    #: retiring components.  Purely informational (drivers deliver the
    #: full lifecycle to every mechanism; the shims ignore it).
    window_aware: bool = False

    def __init__(self) -> None:
        self._graph = BipartiteGraph()
        self._thread_components: Set[Vertex] = set()
        self._object_components: Set[Vertex] = set()
        self._component_order: List[Tuple[str, Vertex]] = []
        self._decisions: List[Decision] = []
        self._retirements: List[Retirement] = []
        self._events_seen = 0
        self._expires_seen = 0
        self._epoch = 0
        self._peak_size = 0

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        """Pick ``THREAD`` or ``OBJECT`` for an uncovered event ``(thread, obj)``.

        Called after the event's edge has been added to the revealed graph,
        so popularity-style policies see the up-to-date degrees.
        """

    def _on_observe(self, thread: Vertex, obj: Vertex) -> None:
        """Lifecycle hook: one event was revealed (before the cover check)."""

    def _on_expire(self, thread: Vertex, obj: Vertex) -> None:
        """Lifecycle hook: one live occurrence of ``(thread, obj)`` expired."""

    def _on_end_epoch(self) -> Tuple[Vertex, ...]:
        """Lifecycle hook: an epoch boundary; returns retired components."""
        return ()

    # ------------------------------------------------------------------
    # Event stream (the lifecycle protocol)
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Optional[Vertex]:
        """Reveal one event and return the component added (or ``None``).

        The revealed thread-object graph is updated first; if the event is
        already covered by an existing component the component set is left
        untouched, exactly as prescribed in Section IV.
        """
        self._graph.add_edge(thread, obj)
        event_index = self._events_seen
        self._events_seen += 1
        self._on_observe(thread, obj)

        if thread in self._thread_components or obj in self._object_components:
            return None

        choice = self._choose(thread, obj)
        if choice == THREAD:
            component = thread
            self._thread_components.add(thread)
        elif choice == OBJECT:
            component = obj
            self._object_components.add(obj)
        else:
            raise OnlineMechanismError(
                f"{type(self).__name__}._choose returned {choice!r}, "
                f"expected {THREAD!r} or {OBJECT!r}"
            )
        self._component_order.append((choice, component))
        if len(self._component_order) > self._peak_size:
            self._peak_size = len(self._component_order)
        self._decisions.append(
            Decision(
                event_index=event_index,
                thread=thread,
                obj=obj,
                choice=choice,
                component=component,
            )
        )
        return component

    def expire(self, thread: Vertex, obj: Vertex) -> None:
        """Retract one previously revealed occurrence of ``(thread, obj)``.

        Append-only mechanisms ignore expiry by design (their clocks never
        shrink - the premise of the paper's competitive analysis); the
        base class only counts the tick and defers to :meth:`_on_expire`.
        Drivers must respect the stream layer's multiset contract: never
        more expires than observes per pair.
        """
        self._expires_seen += 1
        self._on_expire(thread, obj)

    def end_epoch(self) -> Tuple[Vertex, ...]:
        """Close the current epoch; returns the components retired at it.

        Epoch boundaries are the only points at which a window-aware
        mechanism may restructure its component set (retire dead
        components, or rebuild the set from the live window); see
        :mod:`repro.online.adaptive`.  For append-only mechanisms this is
        a counted no-op.
        """
        self._epoch += 1
        return self._on_end_epoch()

    def _retire_component(self, component: Vertex) -> None:
        """Give back one component's slot (window-aware subclasses only)."""
        if component in self._thread_components:
            kind = THREAD
            self._thread_components.discard(component)
        elif component in self._object_components:
            kind = OBJECT
            self._object_components.discard(component)
        else:
            raise OnlineMechanismError(
                f"cannot retire {component!r}: not a current component"
            )
        self._component_order.remove((kind, component))
        self._retirements.append(
            Retirement(
                event_index=self._events_seen,
                epoch=self._epoch,
                kind=kind,
                component=component,
            )
        )

    def _add_component(self, kind: str, component: Vertex) -> None:
        """Adopt a component outside the per-event decision path.

        Used by epoch-rebuilding mechanisms; unlike :meth:`observe` it
        logs no :class:`Decision` (there is no triggering event).
        """
        if kind == THREAD:
            if component in self._thread_components:
                return
            self._thread_components.add(component)
        elif kind == OBJECT:
            if component in self._object_components:
                return
            self._object_components.add(component)
        else:
            raise OnlineMechanismError(
                f"component kind must be {THREAD!r} or {OBJECT!r}, got {kind!r}"
            )
        self._component_order.append((kind, component))
        if len(self._component_order) > self._peak_size:
            self._peak_size = len(self._component_order)

    def observe_batch(self, pairs) -> List[int]:
        """Reveal a chunk of ``(thread, object)`` pairs; clock size after each.

        The batched counterpart of :meth:`observe`, and the unit the
        chunked execution pipeline feeds: one call per run of consecutive
        inserts, with expire / epoch ticks delivered between calls so the
        lifecycle semantics are untouched.  **Contract:** bit-identical
        to calling :meth:`observe` once per pair, in order - same
        decisions, same component order, same revealed graph, same
        counters (the property-test suite asserts this for every
        registered mechanism, including the stochastic ones).  The base
        implementation simply loops; mechanisms with a pure per-event
        policy (naive / popularity / hybrid) override it with a hoisted
        inner loop that skips the per-event method dispatch.
        """
        observe = self.observe
        order = self._component_order
        sizes: List[int] = []
        append = sizes.append
        for thread, obj in pairs:
            observe(thread, obj)
            append(len(order))
        return sizes

    def observe_all(self, pairs) -> "OnlineMechanism":
        """Reveal a whole sequence of ``(thread, object)`` pairs; returns ``self``."""
        for thread, obj in pairs:
            self.observe(thread, obj)
        return self

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def revealed_graph(self) -> BipartiteGraph:
        """The thread-object bipartite graph revealed so far."""
        return self._graph

    @property
    def clock_size(self) -> int:
        """Current number of components (the metric the paper plots)."""
        return len(self._component_order)

    @property
    def events_seen(self) -> int:
        return self._events_seen

    @property
    def expires_seen(self) -> int:
        """How many expire ticks the mechanism has been delivered."""
        return self._expires_seen

    @property
    def epoch(self) -> int:
        """How many epoch boundaries have passed."""
        return self._epoch

    @property
    def peak_size(self) -> int:
        """Largest clock size ever held (>= clock_size once retirements start)."""
        return self._peak_size

    @property
    def retired_total(self) -> int:
        """Total components retired over the mechanism's lifetime."""
        return len(self._retirements)

    @property
    def thread_components(self) -> frozenset:
        return frozenset(self._thread_components)

    @property
    def object_components(self) -> frozenset:
        return frozenset(self._object_components)

    @property
    def decisions(self) -> Tuple[Decision, ...]:
        """The full decision log, in the order components were added."""
        return tuple(self._decisions)

    @property
    def decision_count(self) -> int:
        """Number of component-addition decisions so far (O(1)).

        The :attr:`decisions` property copies the whole log; batch
        drivers that only need "did this chunk add components, and
        which" snapshot this counter and read the suffix via
        :meth:`decisions_since`.
        """
        return len(self._decisions)

    def decisions_since(self, start: int) -> Tuple[Decision, ...]:
        """The decisions logged at index ``start`` onwards (O(suffix))."""
        return tuple(self._decisions[start:])

    @property
    def retirements(self) -> Tuple[Retirement, ...]:
        """The full retirement log, in the order components were retired."""
        return tuple(self._retirements)

    def components(self) -> ClockComponents:
        """The current component set as an immutable :class:`ClockComponents`."""
        return ClockComponents(
            thread_components=[c for kind, c in self._component_order if kind == THREAD],
            object_components=[c for kind, c in self._component_order if kind == OBJECT],
        )

    def covers(self, thread: Vertex, obj: Vertex) -> bool:
        """``True`` iff an event of ``thread`` on ``obj`` is already covered."""
        return thread in self._thread_components or obj in self._object_components

    def summary(self) -> dict:
        """Flat dict for the experiment harness."""
        return {
            "mechanism": self.name,
            "clock_size": self.clock_size,
            "peak_size": self._peak_size,
            "thread_components": len(self._thread_components),
            "object_components": len(self._object_components),
            "events_seen": self._events_seen,
            "expires_seen": self._expires_seen,
            "epoch": self._epoch,
            "retired_components": len(self._retirements),
            "revealed_edges": self._graph.num_edges,
            "revealed_density": self._graph.density(),
        }
