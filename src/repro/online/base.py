"""Base machinery for online mixed-vector-clock mechanisms (Section IV).

In the online setting the computation is revealed one event at a time and
the existing clock components may never be removed or replaced - only new
components may be appended.  When an event ``(t, o)`` arrives whose thread
and object are both outside the current component set, the mechanism *must*
add one of the two endpoints (otherwise that event could not be ordered);
which endpoint it picks is the whole difference between the mechanisms the
paper compares:

* :class:`~repro.online.naive.NaiveMechanism` - always the thread (or
  always the object);
* :class:`~repro.online.random_choice.RandomMechanism` - a fair coin;
* :class:`~repro.online.popularity.PopularityMechanism` - whichever
  endpoint is more popular (``deg / |E|``) in the bipartite graph revealed
  so far;
* :class:`~repro.online.hybrid.HybridMechanism` - Popularity until density
  / size thresholds are crossed, then Naive (the practical recipe the paper
  suggests at the end of Section V).

:class:`OnlineMechanism` implements everything except the choice itself:
it maintains the revealed bipartite graph, the growing component set, and
the decision log, and defers to :meth:`OnlineMechanism._choose` for the
single policy decision.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.components import ClockComponents
from repro.exceptions import OnlineMechanismError
from repro.graph.bipartite import BipartiteGraph, Vertex

#: The two possible choices a mechanism can make for an uncovered event.
THREAD = "thread"
OBJECT = "object"


@dataclass(frozen=True)
class Decision:
    """A log record of one component-addition decision.

    ``event_index`` is the position of the triggering event in the revealed
    stream, ``choice`` is ``"thread"`` or ``"object"`` and ``component`` is
    the vertex that was added.
    """

    event_index: int
    thread: Vertex
    obj: Vertex
    choice: str
    component: Vertex


class OnlineMechanism(abc.ABC):
    """Common state machine for all online mechanisms.

    Subclasses implement only :meth:`_choose`, which is called exactly when
    a revealed event is not yet covered and must return ``THREAD`` or
    ``OBJECT``.
    """

    #: Human-readable mechanism name, overridden by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self._graph = BipartiteGraph()
        self._thread_components: Set[Vertex] = set()
        self._object_components: Set[Vertex] = set()
        self._component_order: List[Tuple[str, Vertex]] = []
        self._decisions: List[Decision] = []
        self._events_seen = 0

    # ------------------------------------------------------------------
    # Policy hook
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _choose(self, thread: Vertex, obj: Vertex) -> str:
        """Pick ``THREAD`` or ``OBJECT`` for an uncovered event ``(thread, obj)``.

        Called after the event's edge has been added to the revealed graph,
        so popularity-style policies see the up-to-date degrees.
        """

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Optional[Vertex]:
        """Reveal one event and return the component added (or ``None``).

        The revealed thread-object graph is updated first; if the event is
        already covered by an existing component the component set is left
        untouched, exactly as prescribed in Section IV.
        """
        self._graph.add_edge(thread, obj)
        event_index = self._events_seen
        self._events_seen += 1

        if thread in self._thread_components or obj in self._object_components:
            return None

        choice = self._choose(thread, obj)
        if choice == THREAD:
            component = thread
            self._thread_components.add(thread)
        elif choice == OBJECT:
            component = obj
            self._object_components.add(obj)
        else:
            raise OnlineMechanismError(
                f"{type(self).__name__}._choose returned {choice!r}, "
                f"expected {THREAD!r} or {OBJECT!r}"
            )
        self._component_order.append((choice, component))
        self._decisions.append(
            Decision(
                event_index=event_index,
                thread=thread,
                obj=obj,
                choice=choice,
                component=component,
            )
        )
        return component

    def observe_all(self, pairs) -> "OnlineMechanism":
        """Reveal a whole sequence of ``(thread, object)`` pairs; returns ``self``."""
        for thread, obj in pairs:
            self.observe(thread, obj)
        return self

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def revealed_graph(self) -> BipartiteGraph:
        """The thread-object bipartite graph revealed so far."""
        return self._graph

    @property
    def clock_size(self) -> int:
        """Current number of components (the metric the paper plots)."""
        return len(self._component_order)

    @property
    def events_seen(self) -> int:
        return self._events_seen

    @property
    def thread_components(self) -> frozenset:
        return frozenset(self._thread_components)

    @property
    def object_components(self) -> frozenset:
        return frozenset(self._object_components)

    @property
    def decisions(self) -> Tuple[Decision, ...]:
        """The full decision log, in the order components were added."""
        return tuple(self._decisions)

    def components(self) -> ClockComponents:
        """The current component set as an immutable :class:`ClockComponents`."""
        return ClockComponents(
            thread_components=[c for kind, c in self._component_order if kind == THREAD],
            object_components=[c for kind, c in self._component_order if kind == OBJECT],
        )

    def covers(self, thread: Vertex, obj: Vertex) -> bool:
        """``True`` iff an event of ``thread`` on ``obj`` is already covered."""
        return thread in self._thread_components or obj in self._object_components

    def summary(self) -> dict:
        """Flat dict for the experiment harness."""
        return {
            "mechanism": self.name,
            "clock_size": self.clock_size,
            "thread_components": len(self._thread_components),
            "object_components": len(self._object_components),
            "events_seen": self._events_seen,
            "revealed_edges": self._graph.num_edges,
            "revealed_density": self._graph.density(),
        }
