"""Online timestamping with a growing component set.

The paper's Section IV concentrates on how *large* the component set grows
under each online mechanism; this module supplies the piece a real system
also needs: actually issuing timestamps while the component set is still
growing.

:class:`SparseTimestamp` is a dictionary-backed vector clock value: slots
that a timestamp has never heard of are implicitly zero.  Because the
online setting only ever *adds* components (never removes or renames them),
comparing two sparse timestamps with missing-is-zero semantics is exactly
the comparison the dense vectors would have produced had the final
component set been known from the start.  The property test suite verifies
this equivalence (``s → t ⇔ s.v < t.v``) against the happened-before
oracle for all mechanisms.

:class:`OnlineClockProtocol` pairs an
:class:`~repro.online.base.OnlineMechanism` with per-thread / per-object
sparse clocks and applies the Section III-C update rule using whatever
components exist at the moment each event is revealed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.computation.event import Event, ObjectId, ThreadId
from repro.computation.trace import Computation
from repro.exceptions import ClockError
from repro.online.base import THREAD, OnlineMechanism


class SparseTimestamp:
    """An immutable, dictionary-backed vector clock value.

    Only non-zero slots are stored; missing components compare as zero.
    Unlike :class:`~repro.core.clock.Timestamp`, two sparse timestamps are
    always comparable - the component universe is implicitly "everything
    either of them mentions", which is sound when components are only ever
    appended over time.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[Hashable, int]] = None) -> None:
        cleaned = {k: int(v) for k, v in (values or {}).items() if int(v) != 0}
        if any(v < 0 for v in cleaned.values()):
            raise ClockError("timestamp values must be non-negative")
        self._values: Dict[Hashable, int] = cleaned

    # -- accessors --------------------------------------------------------
    def value_of(self, component: Hashable) -> int:
        return self._values.get(component, 0)

    def as_dict(self) -> Dict[Hashable, int]:
        return dict(self._values)

    def components(self) -> frozenset:
        """The components this timestamp has non-zero knowledge of."""
        return frozenset(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._values.items())

    # -- derivation --------------------------------------------------------
    def merged(self, other: "SparseTimestamp") -> "SparseTimestamp":
        """Component-wise maximum."""
        merged = dict(self._values)
        for component, value in other._values.items():
            if merged.get(component, 0) < value:
                merged[component] = value
        return SparseTimestamp(merged)

    def incremented(self, component: Hashable, amount: int = 1) -> "SparseTimestamp":
        if amount < 1:
            raise ClockError("increment amount must be positive")
        values = dict(self._values)
        values[component] = values.get(component, 0) + amount
        return SparseTimestamp(values)

    # -- order --------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseTimestamp):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __le__(self, other: "SparseTimestamp") -> bool:
        return all(other.value_of(c) >= v for c, v in self._values.items())

    def __lt__(self, other: "SparseTimestamp") -> bool:
        return self <= other and self._values != other._values

    def __ge__(self, other: "SparseTimestamp") -> bool:
        return other <= self

    def __gt__(self, other: "SparseTimestamp") -> bool:
        return other < self

    def concurrent_with(self, other: "SparseTimestamp") -> bool:
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c}:{v}" for c, v in sorted(self._values.items(), key=str))
        return f"<{inner}>"


ZERO = SparseTimestamp()


class OnlineClockProtocol:
    """Timestamp an online event stream while a mechanism grows the clock.

    Parameters
    ----------
    mechanism:
        A fresh :class:`~repro.online.base.OnlineMechanism`; the protocol
        drives it (one ``observe`` per event) and therefore owns it - do
        not feed the same mechanism from elsewhere at the same time.
    """

    def __init__(self, mechanism: OnlineMechanism) -> None:
        if mechanism.events_seen:
            raise ClockError("mechanism has already observed events; use a fresh one")
        self._mechanism = mechanism
        self._thread_clocks: Dict[ThreadId, SparseTimestamp] = {}
        self._object_clocks: Dict[ObjectId, SparseTimestamp] = {}
        self._event_timestamps: Dict[Event, SparseTimestamp] = {}

    # ------------------------------------------------------------------
    @property
    def mechanism(self) -> OnlineMechanism:
        return self._mechanism

    @property
    def clock_size(self) -> int:
        """Current clock dimension (number of components added so far)."""
        return self._mechanism.clock_size

    def thread_clock(self, thread: ThreadId) -> SparseTimestamp:
        return self._thread_clocks.get(thread, ZERO)

    def object_clock(self, obj: ObjectId) -> SparseTimestamp:
        return self._object_clocks.get(obj, ZERO)

    # ------------------------------------------------------------------
    def observe(self, thread: ThreadId, obj: ObjectId) -> SparseTimestamp:
        """Reveal one operation: grow the clock if needed, then timestamp it."""
        self._mechanism.observe(thread, obj)
        stamped = self.thread_clock(thread).merged(self.object_clock(obj))
        if obj in self._mechanism.object_components:
            stamped = stamped.incremented(obj)
        if thread in self._mechanism.thread_components:
            stamped = stamped.incremented(thread)
        self._thread_clocks[thread] = stamped
        self._object_clocks[obj] = stamped
        return stamped

    def observe_batch(
        self, pairs: Iterable[Tuple[ThreadId, ObjectId]]
    ) -> List[SparseTimestamp]:
        """Reveal a chunk of operations; one sparse timestamp per event.

        Drives the mechanism's :meth:`~repro.online.base.OnlineMechanism.observe_batch`
        (so the policy runs its hoisted loop where it has one) and then
        stamps each pair with the component set that existed at its
        moment - reading membership from the mechanism's decision log
        rather than re-freezing the component frozensets per event.
        Bit-identical to per-event :meth:`observe`.
        """
        pairs = list(pairs)
        decisions_before = self._mechanism.decision_count
        self._mechanism.observe_batch(pairs)
        new_decisions = self._mechanism.decisions_since(decisions_before)
        base = self._mechanism.events_seen - len(pairs)
        # The sparse stamping only needs to know, per event, whether each
        # endpoint is a component *at that event*: membership before the
        # batch, plus any decision at an earlier-or-equal offset.
        thread_members = set(self._mechanism.thread_components)
        object_members = set(self._mechanism.object_components)
        for decision in new_decisions:
            if decision.choice == THREAD:
                thread_members.discard(decision.component)
            else:
                object_members.discard(decision.component)
        cursor = 0
        stamps: List[SparseTimestamp] = []
        for offset, (thread, obj) in enumerate(pairs):
            while (
                cursor < len(new_decisions)
                and new_decisions[cursor].event_index - base <= offset
            ):
                decision = new_decisions[cursor]
                if decision.choice == THREAD:
                    thread_members.add(decision.component)
                else:
                    object_members.add(decision.component)
                cursor += 1
            stamped = self.thread_clock(thread).merged(self.object_clock(obj))
            if obj in object_members:
                stamped = stamped.incremented(obj)
            if thread in thread_members:
                stamped = stamped.incremented(thread)
            self._thread_clocks[thread] = stamped
            self._object_clocks[obj] = stamped
            stamps.append(stamped)
        return stamps

    def observe_event(self, event: Event) -> SparseTimestamp:
        """Reveal an already-minted event and remember its timestamp."""
        stamp = self.observe(event.thread, event.obj)
        self._event_timestamps[event] = stamp
        return stamp

    def timestamp_computation(self, computation: Computation) -> Dict[Event, SparseTimestamp]:
        """Reveal a whole computation in interleaving order; returns all timestamps."""
        if self._event_timestamps or self._mechanism.events_seen:
            raise ClockError("protocol has already observed events; use a fresh instance")
        for event in computation:
            self.observe_event(event)
        return dict(self._event_timestamps)

    def timestamp(self, event: Event) -> SparseTimestamp:
        try:
            return self._event_timestamps[event]
        except KeyError:
            raise ClockError(f"event {event} was not timestamped") from None

    # ------------------------------------------------------------------
    def happened_before(self, earlier: Event, later: Event) -> bool:
        return self.timestamp(earlier) < self.timestamp(later)

    def concurrent(self, a: Event, b: Event) -> bool:
        if a == b:
            return False
        return self.timestamp(a).concurrent_with(self.timestamp(b))
