"""Vector clock timestamps.

A :class:`Timestamp` is an immutable vector of non-negative integers, one
slot per component of a :class:`~repro.core.components.ClockComponents`.
Comparisons implement the usual (strict) vector clock order:

* ``a <= b``  iff  every slot of ``a`` is ≤ the corresponding slot of ``b``;
* ``a < b``   iff  ``a <= b`` and ``a != b``;
* ``a ∥ b`` (concurrent) iff neither ``a < b`` nor ``b < a`` and ``a != b``.

Theorem 2 of the paper states that for timestamps produced by a valid
(mixed) vector clock protocol, ``s → t ⇔ s.v < t.v``; the test suite checks
exactly this equivalence against the happened-before oracle.

Timestamps are keyed by *component identity*, not slot position, so two
timestamps are only comparable when they were produced over the same
component set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.components import ClockComponents
from repro.exceptions import ClockError
from repro.graph.bipartite import Vertex


class Timestamp:
    """An immutable vector clock value over a fixed component set."""

    __slots__ = ("_components", "_values")

    def __init__(
        self,
        components: ClockComponents,
        values: Optional[Iterable[int]] = None,
    ) -> None:
        self._components = components
        if values is None:
            self._values: Tuple[int, ...] = (0,) * components.size
        else:
            vals = tuple(int(v) for v in values)
            if len(vals) != components.size:
                raise ClockError(
                    f"expected {components.size} values, got {len(vals)}"
                )
            if any(v < 0 for v in vals):
                raise ClockError("timestamp values must be non-negative")
            self._values = vals

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, components: ClockComponents) -> "Timestamp":
        """The all-zero timestamp (the initial clock of every thread/object)."""
        return cls(components)

    @classmethod
    def _from_trusted(
        cls, components: ClockComponents, values: Tuple[int, ...]
    ) -> "Timestamp":
        """Build a timestamp from an already-validated value tuple.

        Internal fast path for :class:`~repro.core.kernel.ClockKernel` and
        the derivation methods below: ``values`` must be a tuple of
        ``components.size`` non-negative ints.  Skipping the constructor's
        per-slot re-validation is what makes per-event timestamping cheap.
        """
        stamp = object.__new__(cls)
        stamp._components = components
        stamp._values = values
        return stamp

    @classmethod
    def from_mapping(
        cls, components: ClockComponents, mapping: Mapping[Vertex, int]
    ) -> "Timestamp":
        """Build a timestamp from a ``component -> value`` mapping.

        Missing components default to zero; unknown keys raise
        :class:`ClockError`.
        """
        unknown = [key for key in mapping if key not in components]
        if unknown:
            raise ClockError(f"unknown components in mapping: {unknown!r}")
        values = [mapping.get(c, 0) for c in components.ordered]
        return cls(components, values)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def values(self) -> Tuple[int, ...]:
        """Slot values in component order."""
        return self._values

    def value_of(self, component: Vertex) -> int:
        """The value of one component's slot."""
        return self._values[self._components.index_of(component)]

    def as_dict(self) -> Dict[Vertex, int]:
        """The timestamp as a ``component -> value`` dictionary."""
        return dict(zip(self._components.ordered, self._values))

    def sum(self) -> int:
        """Sum of all slots (a rough measure of how much causality was seen)."""
        return sum(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def merged(self, other: "Timestamp") -> "Timestamp":
        """Component-wise maximum (the ``max(p.v, q.v)`` of the update rules)."""
        self._check_compatible(other)
        return Timestamp._from_trusted(
            self._components, tuple(map(max, self._values, other._values))
        )

    def incremented(self, component: Vertex, amount: int = 1) -> "Timestamp":
        """A copy with ``component``'s slot increased by ``amount``."""
        if amount < 1:
            raise ClockError("increment amount must be positive")
        index = self._components.index_of(component)
        values = list(self._values)
        # int() mirrors the validating constructor this method used to go
        # through, so non-int amounts cannot smuggle float slots in.
        values[index] += int(amount)
        return Timestamp._from_trusted(self._components, tuple(values))

    # ------------------------------------------------------------------
    # Order
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._components == other._components and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._components, self._values))

    def __le__(self, other: "Timestamp") -> bool:
        self._check_compatible(other)
        return all(a <= b for a, b in zip(self._values, other._values))

    def __lt__(self, other: "Timestamp") -> bool:
        return self <= other and self._values != other._values

    def __ge__(self, other: "Timestamp") -> bool:
        # Computed directly rather than delegating to ``other <= self``:
        # when exactly one operand is a Timestamp *subclass* (a kernel's
        # lazy stamp), Python dispatches the delegated comparison back to
        # the subclass's inherited reflected operator first, and the two
        # delegating forms recurse into each other forever.
        self._check_compatible(other)
        return all(a >= b for a, b in zip(self._values, other._values))

    def __gt__(self, other: "Timestamp") -> bool:
        return self >= other and self._values != other._values

    def concurrent_with(self, other: "Timestamp") -> bool:
        """``True`` iff neither timestamp dominates the other (and they differ)."""
        self._check_compatible(other)
        return not (self <= other) and not (other <= self)

    def dominates(self, other: "Timestamp") -> bool:
        """Alias for ``other < self`` that reads well in application code."""
        return other < self

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Timestamp") -> None:
        if self._components != other._components:
            raise ClockError(
                "cannot compare timestamps over different component sets"
            )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{component}:{value}"
            for component, value in zip(self._components.ordered, self._values)
        )
        return f"<{inner}>"


def ordering(a: Timestamp, b: Timestamp) -> str:
    """Classify the relation between two timestamps.

    Returns one of ``"before"`` (``a < b``), ``"after"`` (``b < a``),
    ``"equal"`` or ``"concurrent"``.  Used by examples and by the
    race-detection application when explaining its verdicts.
    """
    if a == b:
        return "equal"
    if a < b:
        return "before"
    if b < a:
        return "after"
    return "concurrent"
