"""Thread-based (process-based) vector clocks - the first classical baseline.

Section II of the paper: a vector of size ``n`` (one slot per thread) is
kept by every thread and every object; an operation ``e`` by thread ``p``
on object ``q`` takes ``e.v = max(p.v, q.v)`` and increments
``e.v[e.thread]``.

In this library the thread-based clock is just the generic
:class:`~repro.core.timestamping.VectorClockProtocol` instantiated with all
threads as components; this module provides the explicit constructors so
application code and benchmarks read naturally.
"""

from __future__ import annotations

from typing import Iterable

from repro.computation.trace import Computation
from repro.core.components import ClockComponents
from repro.core.timestamping import TimestampedComputation, VectorClockProtocol
from repro.graph.bipartite import Vertex


def thread_clock_components(threads: Iterable[Vertex]) -> ClockComponents:
    """Component set of the thread-based clock: one slot per thread."""
    return ClockComponents.all_threads(threads)


def thread_clock_protocol(threads: Iterable[Vertex]) -> VectorClockProtocol:
    """A fresh thread-based vector clock protocol for the given thread set."""
    return VectorClockProtocol(thread_clock_components(threads))


def timestamp_with_thread_clock(computation: Computation) -> TimestampedComputation:
    """Timestamp a computation with the classical thread-based clock.

    The clock size equals ``computation.num_threads``.
    """
    protocol = thread_clock_protocol(computation.threads)
    return protocol.timestamp_computation(computation)
