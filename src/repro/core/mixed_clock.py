"""Mixed vector clocks - the paper's contribution.

A mixed vector clock uses *both* threads and objects as components.  Any
vertex cover of the thread-object bipartite graph yields a valid mixed
clock (Theorem 2); the minimum vertex cover yields the optimal (smallest)
one (Theorem 3).  This module provides the constructors that go from a
cover - or directly from a computation via the offline algorithm in
:mod:`repro.offline.algorithm` - to a ready-to-use protocol.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.computation.trace import Computation
from repro.core.components import ClockComponents
from repro.core.timestamping import TimestampedComputation, VectorClockProtocol
from repro.exceptions import ComponentError
from repro.graph.bipartite import BipartiteGraph, Vertex


def mixed_clock_components(
    graph: BipartiteGraph, cover: Iterable[Vertex], validate: bool = True
) -> ClockComponents:
    """Component set of a mixed clock built from a vertex cover of ``graph``.

    With ``validate=True`` (default) the cover property is checked: every
    edge of ``graph`` must have an endpoint among the components, otherwise
    the resulting clock would not be able to order events on the uncovered
    edge and :class:`ComponentError` is raised.
    """
    components = ClockComponents.from_cover(graph, cover)
    if validate:
        components.validate_covers_graph(graph)
    return components


def mixed_clock_protocol(
    graph: BipartiteGraph, cover: Iterable[Vertex], validate: bool = True
) -> VectorClockProtocol:
    """A fresh mixed vector clock protocol from a vertex cover of ``graph``."""
    return VectorClockProtocol(mixed_clock_components(graph, cover, validate=validate))


def timestamp_with_mixed_clock(
    computation: Computation,
    cover: Iterable[Vertex],
    graph: Optional[BipartiteGraph] = None,
) -> TimestampedComputation:
    """Timestamp ``computation`` with the mixed clock defined by ``cover``.

    ``graph`` defaults to the computation's own thread-object bipartite
    graph; pass it explicitly when it has already been computed to avoid
    rebuilding it.
    """
    if graph is None:
        graph = computation.bipartite_graph()
    protocol = mixed_clock_protocol(graph, cover)
    return protocol.timestamp_computation(computation)
