"""Core vector clock library: components, timestamps, protocols.

The generic machinery lives in :mod:`repro.core.timestamping`; the three
concrete clock families of the paper are exposed through small modules:

* :mod:`repro.core.thread_clock` - classical thread-based clock (size ``n``);
* :mod:`repro.core.object_clock` - classical object-based clock (size ``m``);
* :mod:`repro.core.mixed_clock` - the paper's mixed clock (size of a vertex
  cover, optimally the minimum vertex cover).
"""

from repro.core.clock import Timestamp, ordering
from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel
from repro.core.encoding import (
    DeltaDecoder,
    DeltaEncoder,
    apply_delta,
    chain_compression_ratio,
    encode_delta,
)
from repro.core.mixed_clock import (
    mixed_clock_components,
    mixed_clock_protocol,
    timestamp_with_mixed_clock,
)
from repro.core.object_clock import (
    object_clock_components,
    object_clock_protocol,
    timestamp_with_object_clock,
)
from repro.core.thread_clock import (
    thread_clock_components,
    thread_clock_protocol,
    timestamp_with_thread_clock,
)
from repro.core.timestamping import (
    EpochClock,
    TimestampedComputation,
    VectorClockProtocol,
    timestamp_with_components,
    verify_retimestamping,
)

__all__ = [
    "ClockComponents",
    "ClockKernel",
    "EpochClock",
    "DeltaDecoder",
    "DeltaEncoder",
    "apply_delta",
    "chain_compression_ratio",
    "encode_delta",
    "Timestamp",
    "TimestampedComputation",
    "VectorClockProtocol",
    "mixed_clock_components",
    "mixed_clock_protocol",
    "object_clock_components",
    "object_clock_protocol",
    "ordering",
    "thread_clock_components",
    "thread_clock_protocol",
    "timestamp_with_components",
    "timestamp_with_mixed_clock",
    "timestamp_with_object_clock",
    "timestamp_with_thread_clock",
    "verify_retimestamping",
]
