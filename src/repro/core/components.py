"""Component sets for vector clocks.

A vector clock is defined by its *components*: the entities that own one
slot of the vector each.  In the paper a component is either a thread or an
object:

* the classical thread-based clock uses all threads (size ``n``);
* the classical object-based clock uses all objects (size ``m``);
* the mixed clock of the paper uses any *vertex cover* of the thread-object
  bipartite graph, and the optimal mixed clock uses a minimum vertex cover.

:class:`ClockComponents` is the immutable description of such a choice.  It
records which components are threads and which are objects (threads and
objects live in disjoint namespaces, enforced by
:class:`~repro.graph.bipartite.BipartiteGraph`), assigns each component a
fixed slot index, and can verify that it covers a computation or graph -
the property that makes the resulting clock valid (Theorem 2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ComponentError
from repro.graph.bipartite import BipartiteGraph, Vertex


class ClockComponents:
    """An ordered, immutable set of vector clock components.

    Parameters
    ----------
    thread_components:
        Components that are threads.
    object_components:
        Components that are objects.

    The slot order is: thread components first (in the given iteration
    order), then object components.  Order only affects the printed form of
    timestamps, never comparisons.
    """

    __slots__ = ("_threads", "_objects", "_order", "_index")

    def __init__(
        self,
        thread_components: Iterable[Vertex] = (),
        object_components: Iterable[Vertex] = (),
    ) -> None:
        threads = tuple(dict.fromkeys(thread_components))
        objects = tuple(dict.fromkeys(object_components))
        overlap = set(threads) & set(objects)
        if overlap:
            raise ComponentError(
                f"components cannot be both thread and object: {sorted(map(repr, overlap))}"
            )
        self._threads: FrozenSet[Vertex] = frozenset(threads)
        self._objects: FrozenSet[Vertex] = frozenset(objects)
        self._order: Tuple[Vertex, ...] = threads + objects
        self._index: Dict[Vertex, int] = {c: i for i, c in enumerate(self._order)}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def all_threads(cls, threads: Iterable[Vertex]) -> "ClockComponents":
        """The classical thread-based (process-based) clock components."""
        return cls(thread_components=threads)

    @classmethod
    def all_objects(cls, objects: Iterable[Vertex]) -> "ClockComponents":
        """The classical object-based clock components."""
        return cls(object_components=objects)

    @classmethod
    def from_cover(
        cls, graph: BipartiteGraph, cover: Iterable[Vertex]
    ) -> "ClockComponents":
        """Components from a vertex cover of a thread-object bipartite graph.

        Each cover vertex is classified as a thread or an object component
        according to which side of ``graph`` it lives on.
        """
        thread_components = []
        object_components = []
        for vertex in cover:
            if graph.has_thread(vertex):
                thread_components.append(vertex)
            elif graph.has_object(vertex):
                object_components.append(vertex)
            else:
                raise ComponentError(
                    f"cover vertex {vertex!r} is not a vertex of the graph"
                )
        return cls(thread_components, object_components)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def thread_components(self) -> FrozenSet[Vertex]:
        return self._threads

    @property
    def object_components(self) -> FrozenSet[Vertex]:
        return self._objects

    @property
    def ordered(self) -> Tuple[Vertex, ...]:
        """All components in slot order."""
        return self._order

    @property
    def size(self) -> int:
        """Number of components, i.e. the vector clock's dimension."""
        return len(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._order)

    def __contains__(self, component: object) -> bool:
        return component in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClockComponents):
            return NotImplemented
        return self._threads == other._threads and self._objects == other._objects

    def __hash__(self) -> int:
        return hash((self._threads, self._objects))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockComponents(threads={sorted(map(str, self._threads))}, "
            f"objects={sorted(map(str, self._objects))})"
        )

    def index_of(self, component: Vertex) -> int:
        """Slot index of ``component``; raises :class:`ComponentError` if absent."""
        try:
            return self._index[component]
        except KeyError:
            raise ComponentError(f"{component!r} is not a clock component") from None

    def is_thread_component(self, component: Vertex) -> bool:
        return component in self._threads

    def is_object_component(self, component: Vertex) -> bool:
        return component in self._objects

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def covers_pair(self, thread: Vertex, obj: Vertex) -> bool:
        """``True`` iff an event of ``thread`` on ``obj`` owns at least one component."""
        return thread in self._threads or obj in self._objects

    def covers_graph(self, graph: BipartiteGraph) -> bool:
        """``True`` iff these components form a vertex cover of ``graph``."""
        return all(self.covers_pair(t, o) for t, o in graph.edges())

    def validate_covers_graph(self, graph: BipartiteGraph) -> None:
        """Raise :class:`ComponentError` unless the components cover ``graph``.

        A component set that is not a vertex cover cannot yield a valid
        vector clock: an event on an uncovered edge would never advance any
        slot and could not be ordered against its concurrent peers.
        """
        for thread, obj in graph.edges():
            if not self.covers_pair(thread, obj):
                raise ComponentError(
                    f"components do not cover the access ({thread!r}, {obj!r})"
                )

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def extended(
        self,
        thread_components: Iterable[Vertex] = (),
        object_components: Iterable[Vertex] = (),
    ) -> "ClockComponents":
        """A new component set with extra components appended.

        The online mechanisms grow their component set one entity at a
        time; existing components keep their slots (they are never
        removed), new ones are appended, mirroring the online constraint
        stated in Section IV.
        """
        return ClockComponents(
            tuple(c for c in self._order if c in self._threads)
            + tuple(c for c in thread_components if c not in self._threads),
            tuple(c for c in self._order if c in self._objects)
            + tuple(c for c in object_components if c not in self._objects),
        )

    def summary(self) -> Mapping[str, int]:
        """Small dict used in reports: total / thread / object component counts."""
        return {
            "size": self.size,
            "thread_components": len(self._threads),
            "object_components": len(self._objects),
        }
