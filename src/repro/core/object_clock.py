"""Object-based vector clocks - the second classical baseline.

Section II of the paper: a vector of size ``m`` (one slot per object) is
kept by every thread and every object; an operation ``e`` by thread ``p``
on object ``q`` takes ``e.v = max(p.v, q.v)`` and increments
``e.v[e.object]``.

Like the thread-based clock, this is the generic protocol instantiated with
all objects as components.
"""

from __future__ import annotations

from typing import Iterable

from repro.computation.trace import Computation
from repro.core.components import ClockComponents
from repro.core.timestamping import TimestampedComputation, VectorClockProtocol
from repro.graph.bipartite import Vertex


def object_clock_components(objects: Iterable[Vertex]) -> ClockComponents:
    """Component set of the object-based clock: one slot per object."""
    return ClockComponents.all_objects(objects)


def object_clock_protocol(objects: Iterable[Vertex]) -> VectorClockProtocol:
    """A fresh object-based vector clock protocol for the given object set."""
    return VectorClockProtocol(object_clock_components(objects))


def timestamp_with_object_clock(computation: Computation) -> TimestampedComputation:
    """Timestamp a computation with the classical object-based clock.

    The clock size equals ``computation.num_objects``.
    """
    protocol = object_clock_protocol(computation.objects)
    return protocol.timestamp_computation(computation)
