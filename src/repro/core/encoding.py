"""Differential timestamp encoding (Singhal-Kshemkalyani technique).

The related-work section of the paper points out that the
Singhal-Kshemkalyani optimisation - only transmit the vector entries that
changed since the last message to the same destination - is *orthogonal* to
the mixed clock and can be layered on top of it.  This module provides that
layer for the timestamps this library produces:

* :func:`encode_delta` / :func:`apply_delta` - the difference between two
  timestamps over the same component set, as a sparse ``{component: value}``
  mapping containing only the entries that changed;
* :class:`DeltaEncoder` - encodes a stream of timestamps (e.g. the
  successive events of one thread, or the successive messages on one
  channel) as first-full-then-delta records and reports how many integers
  were transmitted compared to sending full vectors every time;
* :func:`chain_compression_ratio` - convenience: the transmitted-integer
  ratio for each thread chain of a timestamped computation.

Because both the mixed clock (fewer components) and the delta encoding
(fewer entries per message) reduce overhead independently, their savings
multiply - which is exactly the claim of the paper's related-work
discussion, and what the corresponding tests check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.clock import Timestamp
from repro.core.components import ClockComponents
from repro.core.timestamping import TimestampedComputation
from repro.exceptions import ClockError
from repro.graph.bipartite import Vertex


def encode_delta(previous: Timestamp, current: Timestamp) -> Dict[Vertex, int]:
    """The sparse difference ``current - previous`` (changed entries only).

    Both timestamps must share the same component set and ``current`` must
    dominate or equal ``previous`` component-wise (vector clocks never go
    backwards along a chain); otherwise :class:`ClockError` is raised.
    """
    if previous.components != current.components:
        raise ClockError("cannot diff timestamps over different component sets")
    if not previous <= current:
        raise ClockError("delta encoding requires a non-decreasing timestamp stream")
    delta: Dict[Vertex, int] = {}
    for component, before, after in zip(
        previous.components.ordered, previous.values, current.values
    ):
        if after != before:
            delta[component] = after
    return delta


def apply_delta(previous: Timestamp, delta: Mapping[Vertex, int]) -> Timestamp:
    """Reconstruct the next timestamp from the previous one plus a delta."""
    values = dict(previous.as_dict())
    for component, value in delta.items():
        if component not in previous.components:
            raise ClockError(f"delta mentions unknown component {component!r}")
        if value < values[component]:
            raise ClockError(
                f"delta moves component {component!r} backwards "
                f"({values[component]} -> {value})"
            )
        values[component] = value
    return Timestamp.from_mapping(previous.components, values)


class DeltaEncoder:
    """Encode a stream of timestamps as one full vector plus per-step deltas.

    The encoder is stateful: the first timestamp is transmitted in full
    (``components.size`` integers), every subsequent one as its delta
    against the previous transmission (2 integers per changed entry - the
    component identity and the new value - which is the accounting Singhal
    and Kshemkalyani use).
    """

    def __init__(self, components: ClockComponents) -> None:
        self._components = components
        self._previous: Optional[Timestamp] = None
        self._full_integers = 0
        self._transmitted_integers = 0
        self._records = 0

    # ------------------------------------------------------------------
    @property
    def records(self) -> int:
        """Number of timestamps encoded so far."""
        return self._records

    @property
    def transmitted_integers(self) -> int:
        """Integers actually transmitted (full first vector + deltas)."""
        return self._transmitted_integers

    @property
    def full_integers(self) -> int:
        """Integers that sending every vector in full would have cost."""
        return self._full_integers

    def compression_ratio(self) -> float:
        """``transmitted / full`` - lower is better; 1.0 means no savings."""
        if self._full_integers == 0:
            return 1.0
        return self._transmitted_integers / self._full_integers

    # ------------------------------------------------------------------
    def encode(self, timestamp: Timestamp) -> Dict[Vertex, int]:
        """Encode the next timestamp of the stream and return what is sent.

        The first call returns the full vector as a mapping; later calls
        return only the changed entries.
        """
        if timestamp.components != self._components:
            raise ClockError("timestamp does not match the encoder's component set")
        self._records += 1
        self._full_integers += self._components.size
        if self._previous is None:
            payload = timestamp.as_dict()
            self._transmitted_integers += self._components.size
        else:
            payload = encode_delta(self._previous, timestamp)
            self._transmitted_integers += 2 * len(payload)
        self._previous = timestamp
        return payload


class DeltaDecoder:
    """The receiving side of :class:`DeltaEncoder`."""

    def __init__(self, components: ClockComponents) -> None:
        self._components = components
        self._previous: Optional[Timestamp] = None

    def decode(self, payload: Mapping[Vertex, int]) -> Timestamp:
        """Reconstruct the next timestamp from an encoder payload."""
        if self._previous is None:
            timestamp = Timestamp.from_mapping(self._components, dict(payload))
        else:
            timestamp = apply_delta(self._previous, payload)
        self._previous = timestamp
        return timestamp


def chain_compression_ratio(stamped: TimestampedComputation) -> Dict[object, float]:
    """Per-thread compression ratio of delta-encoding its event timestamps.

    Models a debugger or monitor that streams each thread's timestamps in
    program order: consecutive timestamps of one thread differ in only a
    few entries, so the delta encoding transmits far fewer integers than
    resending the whole vector, and the saving compounds with the smaller
    mixed-clock vectors.
    """
    ratios: Dict[object, float] = {}
    for thread in stamped.computation.threads:
        encoder = DeltaEncoder(stamped.components)
        decoder = DeltaDecoder(stamped.components)
        for event in stamped.computation.thread_events(thread):
            payload = encoder.encode(stamped[event])
            if decoder.decode(payload) != stamped[event]:  # pragma: no cover - safety net
                raise ClockError("delta round-trip mismatch")
        ratios[thread] = encoder.compression_ratio()
    return ratios
