"""Array-backed mutable clock kernel: the timestamping hot path.

The immutable :class:`~repro.core.clock.Timestamp` API is the right
interface for applications, but deriving every event timestamp through
``merged()`` + ``incremented()`` costs two to three :class:`Timestamp`
constructions per event, each of which re-validates its values slot by
slot.  At the scales the paper targets (Theorem 3 only pays off when the
thread/object counts are large) that interpreter overhead dwarfs the
``O(k)`` work the paper analyses.

:class:`ClockKernel` is the engine behind
:class:`~repro.core.timestamping.VectorClockProtocol`: it applies the
Section III-C update rule

    ``e.v = max(p.v, q.v); e.v[q] += 1 if q ∈ C; e.v[p] += 1 if p ∈ C``

on plain integer arrays (Python lists, i.e. contiguous pointer arrays) and
mints exactly one immutable :class:`Timestamp` per event through the
trusted constructor, skipping re-validation.  The resulting timestamps are
bit-identical to the ones the naive ``merged``/``incremented`` derivation
produces; the property test suite asserts this on random computations.

The kernel is also the mutable substrate of the *lifecycle-aware* clock
protocols (sliding-window monitoring): its component set can grow
(:meth:`ClockKernel.extend_components` - the online setting appends
components as uncovered events arrive) and can be *rotated*
(:meth:`ClockKernel.rotate_epoch` - a new epoch begins over a new
component set, retired components' slots are compacted away, and the
caller replays the live window so every surviving event is re-timestamped
in the new epoch's basis).  Timestamps minted in an epoch reference only
that epoch's components; :class:`~repro.core.timestamping.EpochClock`
wraps the replay and proves verdict preservation with the
re-timestamping invariant check.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.clock import Timestamp
from repro.core.components import ClockComponents
from repro.exceptions import ComponentError
from repro.graph.bipartite import Vertex


def rebase_timestamp(
    stamp: Timestamp, new_components: ClockComponents
) -> Timestamp:
    """Re-express ``stamp`` over ``new_components`` by component identity.

    Components present in both sets keep their values (whatever their
    slot index becomes); components only in the new set read zero - the
    value they would have carried had they existed when the stamp was
    minted.  The single rebasing rule shared by the kernel's component
    extension and :class:`~repro.core.timestamping.EpochClock`'s live
    ledger, so the two can never drift apart.
    """
    old_index = stamp.components._index
    values = tuple(
        stamp._values[old_index[c]] if c in old_index else 0
        for c in new_components.ordered
    )
    return Timestamp._from_trusted(new_components, values)


class ClockKernel:
    """Mutable per-thread / per-object clock state for one protocol run.

    Parameters
    ----------
    components:
        The clock's component set; fixes the vector dimension and the slot
        index of every component.
    strict:
        When ``True`` (the default), observing an operation whose thread
        and object are both outside the component set raises
        :class:`ComponentError`; when ``False`` the operation is merged but
        not incremented (see ``VectorClockProtocol`` for why that loses the
        vector clock property).
    """

    __slots__ = (
        "_components",
        "_strict",
        "_zero",
        "_thread_slot",
        "_object_slot",
        "_thread_stamps",
        "_object_stamps",
        "_epoch",
        "_retired_total",
    )

    def __init__(self, components: ClockComponents, strict: bool = True) -> None:
        self._strict = strict
        self._epoch = 0
        self._retired_total = 0
        self._thread_stamps: Dict[Vertex, Timestamp] = {}
        self._object_stamps: Dict[Vertex, Timestamp] = {}
        self._bind_components(components)

    def _bind_components(self, components: ClockComponents) -> None:
        """Point the kernel at ``components``: slot maps and the zero stamp."""
        self._components = components
        self._zero = Timestamp.zero(components)
        thread_set = components.thread_components
        object_set = components.object_components
        self._thread_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in thread_set
        }
        self._object_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in object_set
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def epoch(self) -> int:
        """How many times :meth:`rotate_epoch` has been applied."""
        return self._epoch

    @property
    def retired_total(self) -> int:
        """Total components retired across all epoch rotations so far."""
        return self._retired_total

    def thread_stamp(self, thread: Vertex) -> Timestamp:
        """Current clock of ``thread`` as an immutable timestamp."""
        return self._thread_stamps.get(thread, self._zero)

    def object_stamp(self, obj: Vertex) -> Timestamp:
        """Current clock of ``obj`` as an immutable timestamp."""
        return self._object_stamps.get(obj, self._zero)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp.

        One list, one tuple and one :class:`Timestamp` are allocated per
        covered event; nothing is re-validated.
        """
        thread_stamp = self._thread_stamps.get(thread)
        object_stamp = self._object_stamps.get(obj)
        object_slot = self._object_slot.get(obj)
        thread_slot = self._thread_slot.get(thread)

        if thread_slot is None and object_slot is None:
            if self._strict:
                raise ComponentError(
                    f"operation ({thread!r}, {obj!r}) is not covered by the "
                    f"clock components"
                )
            # Merge-only (no increment): the degenerate non-strict path.
            stamp = self._merge_only(thread_stamp, object_stamp)
            self._thread_stamps[thread] = stamp
            self._object_stamps[obj] = stamp
            return stamp

        if thread_stamp is None:
            values = list(object_stamp._values) if object_stamp is not None else [
                0
            ] * self._components.size
        elif object_stamp is None or object_stamp is thread_stamp:
            values = list(thread_stamp._values)
        else:
            values = [
                a if a >= b else b
                for a, b in zip(thread_stamp._values, object_stamp._values)
            ]
        if object_slot is not None:
            values[object_slot] += 1
        if thread_slot is not None:
            values[thread_slot] += 1
        stamp = Timestamp._from_trusted(self._components, tuple(values))
        self._thread_stamps[thread] = stamp
        self._object_stamps[obj] = stamp
        return stamp

    def _merge_only(
        self, thread_stamp: Optional[Timestamp], object_stamp: Optional[Timestamp]
    ) -> Timestamp:
        """Bare merge for an uncovered event (non-strict mode only)."""
        if thread_stamp is None and object_stamp is None:
            return self._zero
        if thread_stamp is None:
            return object_stamp
        if object_stamp is None or object_stamp is thread_stamp:
            return thread_stamp
        return thread_stamp.merged(object_stamp)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def extend_components(
        self,
        thread_components: Iterable[Vertex] = (),
        object_components: Iterable[Vertex] = (),
    ) -> ClockComponents:
        """Grow the component set in place (the online append-only step).

        Every stored thread/object clock is re-based onto the extended
        set by component *identity*: existing components keep their
        values (their slot index may move - thread slots precede object
        slots by convention), new components start at zero everywhere,
        which is exactly the value they would have had from the start.
        Returns the new component set.
        """
        extended = self._components.extended(thread_components, object_components)
        if extended.size != self._components.size:
            self._rebase_stamps(extended)
            self._bind_components(extended)
        return self._components

    def rotate_epoch(self, new_components: ClockComponents) -> int:
        """Begin a new epoch over ``new_components``; returns #retired.

        All per-thread / per-object clock state is discarded: the caller
        must replay the events that are still live (in their original
        order) through :meth:`observe` so every surviving event - and the
        thread/object clocks future events merge from - is re-timestamped
        in the new epoch's basis.  Components of the old set absent from
        the new one are *retired*: their slots are compacted away and no
        timestamp minted in the new epoch references them.
        :class:`~repro.core.timestamping.EpochClock` packages the replay
        and the re-timestamping invariant check.
        """
        old = self._components
        retired = len(old.thread_components - new_components.thread_components)
        retired += len(old.object_components - new_components.object_components)
        self._retired_total += retired
        self._epoch += 1
        self._thread_stamps.clear()
        self._object_stamps.clear()
        self._bind_components(new_components)
        return retired

    def _rebase_stamps(self, new_components: ClockComponents) -> None:
        """Re-express every stored clock over ``new_components`` by identity.

        Threads and objects frequently share one stamp object (the
        kernel stores the same instance for both endpoints of an event),
        so rebased results are cached per input stamp to preserve that
        sharing - the ``object_stamp is thread_stamp`` fast path in
        :meth:`observe` depends on it.
        """
        rebased: Dict[Timestamp, Timestamp] = {}

        def rebase(stamp: Timestamp) -> Timestamp:
            cached = rebased.get(stamp)
            if cached is None:
                cached = rebase_timestamp(stamp, new_components)
                rebased[stamp] = cached
            return cached

        for vertex, stamp in self._thread_stamps.items():
            self._thread_stamps[vertex] = rebase(stamp)
        for vertex, stamp in self._object_stamps.items():
            self._object_stamps[vertex] = rebase(stamp)

    def reset(self) -> None:
        """Forget all clock state."""
        self._thread_stamps.clear()
        self._object_stamps.clear()
