"""Array-backed mutable clock kernel: the timestamping hot path.

The immutable :class:`~repro.core.clock.Timestamp` API is the right
interface for applications, but deriving every event timestamp through
``merged()`` + ``incremented()`` costs two to three :class:`Timestamp`
constructions per event, each of which re-validates its values slot by
slot.  At the scales the paper targets (Theorem 3 only pays off when the
thread/object counts are large) that interpreter overhead dwarfs the
``O(k)`` work the paper analyses.

:class:`ClockKernel` is the engine behind
:class:`~repro.core.timestamping.VectorClockProtocol`: it applies the
Section III-C update rule

    ``e.v = max(p.v, q.v); e.v[q] += 1 if q ∈ C; e.v[p] += 1 if p ∈ C``

on plain integer arrays (Python lists, i.e. contiguous pointer arrays) and
mints exactly one immutable :class:`Timestamp` per event through the
trusted constructor, skipping re-validation.  The resulting timestamps are
bit-identical to the ones the naive ``merged``/``incremented`` derivation
produces; the property test suite asserts this on random computations.

The kernel is also the mutable substrate of the *lifecycle-aware* clock
protocols (sliding-window monitoring): its component set can grow
(:meth:`ClockKernel.extend_components` - the online setting appends
components as uncovered events arrive) and can be *rotated*
(:meth:`ClockKernel.rotate_epoch` - a new epoch begins over a new
component set, retired components' slots are compacted away, and the
caller replays the live window so every surviving event is re-timestamped
in the new epoch's basis).  Timestamps minted in an epoch reference only
that epoch's components; :class:`~repro.core.timestamping.EpochClock`
wraps the replay and proves verdict preservation with the
re-timestamping invariant check.

Backends
--------
Per-event :meth:`ClockKernel.observe` pays Python-interpreter overhead
per event no matter how lean the update rule is, so the kernel also has
*batch* entry points - :meth:`ClockKernel.timestamp_batch` (mint one
timestamp per event) and :meth:`ClockKernel.advance_batch` (advance the
clocks and fold a digest, minting nothing) - whose inner loop is
supplied by a pluggable :class:`KernelBackend`:

* ``python`` (:class:`PythonKernelBackend`, always available) - the
  batch loop keeps the working clock vectors as plain lists and applies
  *slot-delta* derivation on the hot path: whenever one operand of the
  merge is absent or the two endpoints already share one stamp, the new
  vector is a C-speed copy of the previous one with the one or two
  incremented slots bumped, skipping the ``O(k)`` Python-level
  element-wise maximum entirely;
* ``numpy`` (:class:`NumpyKernelBackend`, **gated**: selectable only
  when numpy imports, never required) - working vectors live as
  ``int64`` arrays for the duration of the batch, so the merge is a
  single C call (``np.maximum``); arrays are converted back to exact
  Python-int tuples at the batch boundary, which keeps every minted
  timestamp - and therefore every causal verdict - bit-identical to the
  pure-Python derivation.  The property-test suite asserts that
  identity on random computations.

Backend selection: an explicit argument to :class:`ClockKernel` wins,
then :func:`set_default_backend`, then the ``REPRO_KERNEL_BACKEND``
environment variable, then ``python``.  Requesting ``numpy`` without
numpy installed raises a clean :class:`~repro.exceptions.ClockError`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.clock import Timestamp
from repro.core.components import ClockComponents
from repro.exceptions import ClockError, ComponentError
from repro.graph.bipartite import Vertex

try:  # The gate: numpy is an optional accelerator, never a requirement.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Backend names.
PYTHON_BACKEND = "python"
NUMPY_BACKEND = "numpy"

#: 64-bit mixing constants of the stamp-digest fold (FNV prime / Knuth).
_FOLD_MASK = (1 << 64) - 1
_FOLD_PRIME = 0x100000001B3


def fold_stamp_values(fold: int, thread_value: int, object_value: int) -> int:
    """Fold one event's incremented slot values into a running 64-bit digest.

    The digest is an order-sensitive projection of the timestamp stream:
    for every stamped event it absorbs the post-increment values of the
    event's thread and object slots (0 for an absent side).  Any
    divergence in the clock state propagates into some later event's
    incremented slots, so pipelines, backends and worker layouts that
    disagree on any stamp disagree on the digest.  Pure ints, cheap, and
    picklable - the property that lets the sharded engine carry it
    through checkpoints.
    """
    return (
        (fold ^ (thread_value * 2654435761 + object_value * 40503 + 1))
        * _FOLD_PRIME
    ) & _FOLD_MASK


def rebase_timestamp(
    stamp: Timestamp, new_components: ClockComponents
) -> Timestamp:
    """Re-express ``stamp`` over ``new_components`` by component identity.

    Components present in both sets keep their values (whatever their
    slot index becomes); components only in the new set read zero - the
    value they would have carried had they existed when the stamp was
    minted.  The single rebasing rule shared by the kernel's component
    extension and :class:`~repro.core.timestamping.EpochClock`'s live
    ledger, so the two can never drift apart.
    """
    old_index = stamp.components._index
    values = tuple(
        stamp._values[old_index[c]] if c in old_index else 0
        for c in new_components.ordered
    )
    return Timestamp._from_trusted(new_components, values)


# ---------------------------------------------------------------------------
# Batch backends
# ---------------------------------------------------------------------------
class KernelBackend:
    """Strategy supplying the kernel's batch inner loop.

    Backends are stateless between calls: all clock state lives in the
    :class:`ClockKernel`, batch-scoped working representations are built
    on entry and written back before returning (also on error, so a
    strict-mode :class:`~repro.exceptions.ComponentError` raised mid-batch
    leaves exactly the events before it applied - the same prefix a
    sequential ``observe`` loop would have left).  Statelessness is also
    what makes kernels picklable across backends: a backend pickles as
    its name.
    """

    name = "abstract"

    def timestamp_batch(
        self, kernel: "ClockKernel", pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Timestamp]:
        raise NotImplementedError

    def advance_batch(
        self,
        kernel: "ClockKernel",
        pairs: Sequence[Tuple[Vertex, Vertex]],
        fold: int,
    ) -> int:
        raise NotImplementedError

    def __reduce__(self):
        # Checkpoints must stay loadable anywhere: a shard pickled under
        # the numpy backend unpickles on a numpy-less host as the python
        # backend (bit-identical by contract) instead of failing the
        # whole resume; the resuming run re-pins its own --backend right
        # after loading anyway.
        return (_backend_from_checkpoint, (self.name,))


class PythonKernelBackend(KernelBackend):
    """The always-available pure-Python batch loop (slot-delta hot path)."""

    name = PYTHON_BACKEND

    def timestamp_batch(self, kernel, pairs):
        # Minting a Timestamp per event needs a fresh tuple per event
        # anyway, so the minted stamps themselves are the working state:
        # this is observe() with the attribute lookups hoisted out of the
        # loop and the slot-delta fast paths applied to the tuples.
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        from_trusted = Timestamp._from_trusted
        stamps: List[Timestamp] = []
        append = stamps.append
        for thread, obj in pairs:
            thread_stamp = thread_stamps.get(thread)
            object_stamp = object_stamps.get(obj)
            object_slot = object_slots.get(obj)
            thread_slot = thread_slots.get(thread)
            if thread_slot is None and object_slot is None:
                if kernel._strict:
                    raise ComponentError(
                        f"operation ({thread!r}, {obj!r}) is not covered by "
                        f"the clock components"
                    )
                stamp = kernel._merge_only(thread_stamp, object_stamp)
                thread_stamps[thread] = stamp
                object_stamps[obj] = stamp
                append(stamp)
                continue
            if thread_stamp is None:
                values = (
                    list(object_stamp._values)
                    if object_stamp is not None
                    else [0] * size
                )
            elif object_stamp is None or object_stamp is thread_stamp:
                values = list(thread_stamp._values)
            else:
                a = thread_stamp._values
                b = object_stamp._values
                values = [x if x >= y else y for x, y in zip(a, b)]
            if object_slot is not None:
                values[object_slot] += 1
            if thread_slot is not None:
                values[thread_slot] += 1
            stamp = from_trusted(components, tuple(values))
            thread_stamps[thread] = stamp
            object_stamps[obj] = stamp
            append(stamp)
        return stamps

    def advance_batch(self, kernel, pairs, fold):
        # The digest-only loop keeps working vectors as plain lists
        # (frozen by convention once shared) and mints nothing: stamps
        # for the touched entities are materialised once at the batch
        # boundary, preserving the thread/object stamp *sharing* the
        # per-event fast path depends on.
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        thread_work: Dict[Vertex, list] = {}
        object_work: Dict[Vertex, list] = {}
        try:
            for thread, obj in pairs:
                thread_values = thread_work.get(thread)
                if thread_values is None:
                    stamp = thread_stamps.get(thread)
                    if stamp is not None:
                        thread_values = list(stamp._values)
                object_values = object_work.get(obj)
                if object_values is None:
                    stamp = object_stamps.get(obj)
                    if stamp is not None:
                        object_values = list(stamp._values)
                object_slot = object_slots.get(obj)
                thread_slot = thread_slots.get(thread)
                if thread_slot is None and object_slot is None:
                    if kernel._strict:
                        raise ComponentError(
                            f"operation ({thread!r}, {obj!r}) is not covered "
                            f"by the clock components"
                        )
                    # Merge-only: no increment, digest sees (0, 0).
                    if thread_values is None:
                        values = (
                            object_values
                            if object_values is not None
                            else [0] * size
                        )
                    elif (
                        object_values is None or object_values is thread_values
                    ):
                        values = thread_values
                    else:
                        values = [
                            x if x >= y else y
                            for x, y in zip(thread_values, object_values)
                        ]
                    thread_work[thread] = values
                    object_work[obj] = values
                    fold = (
                        (fold ^ 1) * _FOLD_PRIME
                    ) & _FOLD_MASK
                    continue
                # Slot-delta fast paths: copy + bump instead of an O(k)
                # Python-level element-wise max whenever one operand is
                # absent or both endpoints already share one vector.
                if thread_values is None:
                    values = (
                        object_values.copy()
                        if object_values is not None
                        else [0] * size
                    )
                elif object_values is None or object_values is thread_values:
                    values = thread_values.copy()
                else:
                    values = [
                        x if x >= y else y
                        for x, y in zip(thread_values, object_values)
                    ]
                if object_slot is not None:
                    values[object_slot] += 1
                if thread_slot is not None:
                    values[thread_slot] += 1
                thread_work[thread] = values
                object_work[obj] = values
                fold = (
                    (
                        fold
                        ^ (
                            (values[thread_slot] if thread_slot is not None else 0)
                            * 2654435761
                            + (values[object_slot] if object_slot is not None else 0)
                            * 40503
                            + 1
                        )
                    )
                    * _FOLD_PRIME
                ) & _FOLD_MASK
        finally:
            _write_back_lists(
                components, thread_work, object_work, thread_stamps, object_stamps
            )
        return fold


def _write_back_lists(components, thread_work, object_work,
                      thread_stamps, object_stamps) -> None:
    """Mint one Timestamp per unique working vector and store it.

    The identity cache preserves stamp *sharing*: when a thread and an
    object ended the batch on the same vector (they were endpoints of
    the same last event), they get the same Timestamp instance, which is
    what the ``object_stamp is thread_stamp`` per-event fast path and
    the rebase cache key on.  Working vectors stay referenced by the
    work dicts until this completes, so ``id`` keys cannot be recycled.
    """
    minted: Dict[int, Timestamp] = {}
    from_trusted = Timestamp._from_trusted
    for vertex, values in thread_work.items():
        key = id(values)
        stamp = minted.get(key)
        if stamp is None:
            stamp = from_trusted(components, tuple(values))
            minted[key] = stamp
        thread_stamps[vertex] = stamp
    for vertex, values in object_work.items():
        key = id(values)
        stamp = minted.get(key)
        if stamp is None:
            stamp = from_trusted(components, tuple(values))
            minted[key] = stamp
        object_stamps[vertex] = stamp


class NumpyKernelBackend(KernelBackend):
    """The gated numpy batch loop: array-resident clocks, C-speed merge.

    Working vectors are ``int64`` arrays for the duration of the batch
    (one conversion per *touched entity*, amortised over the batch, not
    one per event) and the element-wise maximum is a single ``np.maximum``
    call.  Values re-enter the immutable :class:`Timestamp` world through
    ``tolist()``, which restores exact Python ints - verdict bit-identity
    with the python backend is asserted by the property tests.
    """

    name = NUMPY_BACKEND

    #: Below this batch length the array working-state setup costs more
    #: than it saves, so short runs (warm-up segments between component
    #: additions, expire-riddled streams) take the pure-Python loop.
    #: Purely a wall-clock switch: both loops are bit-identical.
    MIN_ARRAY_BATCH = 48

    #: Below this clock dimension ``np.maximum`` call overhead exceeds
    #: the Python element-wise loop it replaces, so small clocks take
    #: the Python loop too.  The crossover differs by mode: the
    #: digest-only path replaces just the merge (a few dozen slots pay
    #: off), while minting still converts every stamp back to a Python
    #: tuple, which cancels the array win until clocks are much wider.
    #: Same bit-identity argument as above in both cases.
    MIN_ARRAY_DIM_ADVANCE = 48
    MIN_ARRAY_DIM_MINT = 160

    def __init__(self) -> None:
        self._fallback = PythonKernelBackend()

    def _use_arrays(self, kernel, pairs, min_dim) -> bool:
        return (
            len(pairs) >= self.MIN_ARRAY_BATCH
            and kernel._components.size >= min_dim
        )

    def timestamp_batch(self, kernel, pairs):
        if not self._use_arrays(kernel, pairs, self.MIN_ARRAY_DIM_MINT):
            return self._fallback.timestamp_batch(kernel, pairs)
        stamps: List[Timestamp] = []
        self._run(kernel, pairs, 0, stamps)
        return stamps

    def advance_batch(self, kernel, pairs, fold):
        if not self._use_arrays(kernel, pairs, self.MIN_ARRAY_DIM_ADVANCE):
            return self._fallback.advance_batch(kernel, pairs, fold)
        return self._run(kernel, pairs, fold, None)

    def _run(self, kernel, pairs, fold, stamps):
        np = _np
        if np is None:  # pragma: no cover - resolve_backend gates this
            raise ClockError("numpy backend invoked without numpy installed")
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        maximum = np.maximum
        from_trusted = Timestamp._from_trusted
        thread_work: Dict[Vertex, object] = {}
        object_work: Dict[Vertex, object] = {}
        try:
            for thread, obj in pairs:
                thread_values = thread_work.get(thread)
                if thread_values is None:
                    stamp = thread_stamps.get(thread)
                    if stamp is not None:
                        thread_values = np.array(stamp._values, dtype=np.int64)
                object_values = object_work.get(obj)
                if object_values is None:
                    stamp = object_stamps.get(obj)
                    if stamp is not None:
                        object_values = np.array(stamp._values, dtype=np.int64)
                object_slot = object_slots.get(obj)
                thread_slot = thread_slots.get(thread)
                if thread_slot is None and object_slot is None:
                    if kernel._strict:
                        raise ComponentError(
                            f"operation ({thread!r}, {obj!r}) is not covered "
                            f"by the clock components"
                        )
                    if thread_values is None:
                        values = (
                            object_values
                            if object_values is not None
                            else np.zeros(size, dtype=np.int64)
                        )
                    elif (
                        object_values is None or object_values is thread_values
                    ):
                        values = thread_values
                    else:
                        values = maximum(thread_values, object_values)
                    thread_work[thread] = values
                    object_work[obj] = values
                    if stamps is not None:
                        stamp = from_trusted(components, tuple(values.tolist()))
                        stamps.append(stamp)
                    else:
                        fold = ((fold ^ 1) * _FOLD_PRIME) & _FOLD_MASK
                    continue
                if thread_values is None:
                    values = (
                        object_values.copy()
                        if object_values is not None
                        else np.zeros(size, dtype=np.int64)
                    )
                elif object_values is None or object_values is thread_values:
                    values = thread_values.copy()
                else:
                    values = maximum(thread_values, object_values)
                if object_slot is not None:
                    values[object_slot] += 1
                if thread_slot is not None:
                    values[thread_slot] += 1
                thread_work[thread] = values
                object_work[obj] = values
                if stamps is not None:
                    stamps.append(from_trusted(components, tuple(values.tolist())))
                else:
                    fold = (
                        (
                            fold
                            ^ (
                                (int(values[thread_slot]) if thread_slot is not None else 0)
                                * 2654435761
                                + (int(values[object_slot]) if object_slot is not None else 0)
                                * 40503
                                + 1
                            )
                        )
                        * _FOLD_PRIME
                    ) & _FOLD_MASK
        finally:
            self._write_back(
                components, thread_work, object_work, thread_stamps, object_stamps
            )
        return fold

    @staticmethod
    def _write_back(components, thread_work, object_work,
                    thread_stamps, object_stamps) -> None:
        minted: Dict[int, Timestamp] = {}
        from_trusted = Timestamp._from_trusted
        for store, work in (
            (thread_stamps, thread_work),
            (object_stamps, object_work),
        ):
            for vertex, values in work.items():
                key = id(values)
                stamp = minted.get(key)
                if stamp is None:
                    stamp = from_trusted(components, tuple(values.tolist()))
                    minted[key] = stamp
                store[vertex] = stamp


_BACKENDS: Dict[str, KernelBackend] = {PYTHON_BACKEND: PythonKernelBackend()}

#: Process-wide default set by :func:`set_default_backend` (``None`` defers
#: to the ``REPRO_KERNEL_BACKEND`` environment variable, then ``python``).
_DEFAULT_BACKEND: Optional[str] = None


def numpy_available() -> bool:
    """``True`` when the optional numpy backend can actually be selected."""
    return _np is not None


def available_backends() -> Tuple[str, ...]:
    """The backend names selectable in this process, python first."""
    if _np is not None:
        return (PYTHON_BACKEND, NUMPY_BACKEND)
    return (PYTHON_BACKEND,)


def default_backend_name() -> str:
    """The backend used when no explicit choice is made anywhere."""
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    return os.environ.get("REPRO_KERNEL_BACKEND", "").strip() or PYTHON_BACKEND


def default_backend_override() -> Optional[str]:
    """The explicit process-wide override, or ``None`` when unset.

    Distinct from :func:`default_backend_name`, which also folds in the
    environment variable and the ``python`` fallback - callers that pin
    a backend temporarily (the ratio sweep's workers) save this raw
    value and restore it, so they never clobber an ambient selection.
    """
    return _DEFAULT_BACKEND


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates availability immediately, so a CLI ``--backend numpy``
    without numpy fails at argument-handling time, not deep inside a run.
    """
    global _DEFAULT_BACKEND
    if name is not None:
        resolve_backend(name)
    _DEFAULT_BACKEND = name


def _backend_from_checkpoint(name: str) -> KernelBackend:
    """Unpickle entry point for backends: lenient where resolve is strict.

    See :meth:`KernelBackend.__reduce__` - an unavailable backend named
    by old state degrades to ``python`` rather than making the pickle
    unreadable.
    """
    try:
        return resolve_backend(name)
    except ClockError:
        return resolve_backend(PYTHON_BACKEND)


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """The backend instance for ``name`` (``None``: the current default).

    Raises :class:`~repro.exceptions.ClockError` for unknown names and
    for ``numpy`` when numpy is not importable - the gate that keeps the
    accelerator optional.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = default_backend_name()
    if name == NUMPY_BACKEND:
        if _np is None:
            raise ClockError(
                "kernel backend 'numpy' requested but numpy is not "
                "importable; install numpy or select the 'python' backend"
            )
        backend = _BACKENDS.get(NUMPY_BACKEND)
        if backend is None:
            backend = _BACKENDS[NUMPY_BACKEND] = NumpyKernelBackend()
        return backend
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ClockError(
            f"unknown kernel backend {name!r} "
            f"(expected one of: {', '.join(available_backends())})"
        ) from None


class ClockKernel:
    """Mutable per-thread / per-object clock state for one protocol run.

    Parameters
    ----------
    components:
        The clock's component set; fixes the vector dimension and the slot
        index of every component.
    strict:
        When ``True`` (the default), observing an operation whose thread
        and object are both outside the component set raises
        :class:`ComponentError`; when ``False`` the operation is merged but
        not incremented (see ``VectorClockProtocol`` for why that loses the
        vector clock property).
    backend:
        The :class:`KernelBackend` (or its name) supplying the batch inner
        loop; ``None`` resolves the process default (see the module
        docstring).  The backend never changes results, only wall-clock.
    """

    __slots__ = (
        "_components",
        "_strict",
        "_zero",
        "_thread_slot",
        "_object_slot",
        "_thread_stamps",
        "_object_stamps",
        "_epoch",
        "_retired_total",
        "_backend",
    )

    def __init__(
        self,
        components: ClockComponents,
        strict: bool = True,
        backend: Optional[object] = None,
    ) -> None:
        self._strict = strict
        self._epoch = 0
        self._retired_total = 0
        self._backend = resolve_backend(backend)
        self._thread_stamps: Dict[Vertex, Timestamp] = {}
        self._object_stamps: Dict[Vertex, Timestamp] = {}
        self._bind_components(components)

    def _bind_components(self, components: ClockComponents) -> None:
        """Point the kernel at ``components``: slot maps and the zero stamp."""
        self._components = components
        self._zero = Timestamp.zero(components)
        thread_set = components.thread_components
        object_set = components.object_components
        self._thread_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in thread_set
        }
        self._object_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in object_set
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def epoch(self) -> int:
        """How many times :meth:`rotate_epoch` has been applied."""
        return self._epoch

    @property
    def retired_total(self) -> int:
        """Total components retired across all epoch rotations so far."""
        return self._retired_total

    @property
    def backend_name(self) -> str:
        """Name of the backend supplying the batch inner loop."""
        return self._backend.name

    def set_backend(self, backend: Optional[object]) -> None:
        """Swap the batch backend (results are identical by contract).

        Used when resuming a checkpointed run under a different
        ``--backend``: the pickled kernel carries the backend it ran
        with, and the resuming configuration wins.
        """
        self._backend = resolve_backend(backend)

    def thread_stamp(self, thread: Vertex) -> Timestamp:
        """Current clock of ``thread`` as an immutable timestamp."""
        return self._thread_stamps.get(thread, self._zero)

    def object_stamp(self, obj: Vertex) -> Timestamp:
        """Current clock of ``obj`` as an immutable timestamp."""
        return self._object_stamps.get(obj, self._zero)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp.

        One list, one tuple and one :class:`Timestamp` are allocated per
        covered event; nothing is re-validated.
        """
        thread_stamp = self._thread_stamps.get(thread)
        object_stamp = self._object_stamps.get(obj)
        object_slot = self._object_slot.get(obj)
        thread_slot = self._thread_slot.get(thread)

        if thread_slot is None and object_slot is None:
            if self._strict:
                raise ComponentError(
                    f"operation ({thread!r}, {obj!r}) is not covered by the "
                    f"clock components"
                )
            # Merge-only (no increment): the degenerate non-strict path.
            stamp = self._merge_only(thread_stamp, object_stamp)
            self._thread_stamps[thread] = stamp
            self._object_stamps[obj] = stamp
            return stamp

        if thread_stamp is None:
            values = list(object_stamp._values) if object_stamp is not None else [
                0
            ] * self._components.size
        elif object_stamp is None or object_stamp is thread_stamp:
            values = list(thread_stamp._values)
        else:
            values = [
                a if a >= b else b
                for a, b in zip(thread_stamp._values, object_stamp._values)
            ]
        if object_slot is not None:
            values[object_slot] += 1
        if thread_slot is not None:
            values[thread_slot] += 1
        stamp = Timestamp._from_trusted(self._components, tuple(values))
        self._thread_stamps[thread] = stamp
        self._object_stamps[obj] = stamp
        return stamp

    def timestamp_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Timestamp]:
        """Apply the update rule to a whole chunk; one timestamp per event.

        Bit-identical to calling :meth:`observe` per pair (the property
        tests assert it for every backend), but the inner loop is the
        backend's: slot lookups and stamp allocation are amortised over
        the batch instead of being re-paid per Python call.  On a
        strict-mode coverage error the events preceding the offender are
        applied, exactly as a sequential loop would have left them.
        """
        return self._backend.timestamp_batch(self, pairs)

    def advance_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]], fold: int = 0
    ) -> int:
        """Advance the clocks over a chunk without minting timestamps.

        The engine's hot path: per-thread/object clock state ends up
        exactly as after :meth:`timestamp_batch`, but no per-event
        :class:`Timestamp` is materialised - the returned value is
        ``fold`` advanced by :func:`fold_stamp_values` for every event,
        the digest the sharded engine carries into its fingerprint.
        """
        return self._backend.advance_batch(self, pairs, fold)

    def fold_event(
        self, fold: int, stamp: Timestamp, thread: Vertex, obj: Vertex
    ) -> int:
        """Fold one per-event stamp into the digest (per-event pipeline).

        The counterpart of :meth:`advance_batch`'s internal fold: both
        absorb the post-increment thread/object slot values, so the
        per-event and batched pipelines produce the same digest for the
        same stream.
        """
        thread_slot = self._thread_slot.get(thread)
        object_slot = self._object_slot.get(obj)
        values = stamp._values
        return fold_stamp_values(
            fold,
            values[thread_slot] if thread_slot is not None else 0,
            values[object_slot] if object_slot is not None else 0,
        )

    def _merge_only(
        self, thread_stamp: Optional[Timestamp], object_stamp: Optional[Timestamp]
    ) -> Timestamp:
        """Bare merge for an uncovered event (non-strict mode only)."""
        if thread_stamp is None and object_stamp is None:
            return self._zero
        if thread_stamp is None:
            return object_stamp
        if object_stamp is None or object_stamp is thread_stamp:
            return thread_stamp
        return thread_stamp.merged(object_stamp)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def extend_components(
        self,
        thread_components: Iterable[Vertex] = (),
        object_components: Iterable[Vertex] = (),
    ) -> ClockComponents:
        """Grow the component set in place (the online append-only step).

        Every stored thread/object clock is re-based onto the extended
        set by component *identity*: existing components keep their
        values (their slot index may move - thread slots precede object
        slots by convention), new components start at zero everywhere,
        which is exactly the value they would have had from the start.
        Returns the new component set.
        """
        extended = self._components.extended(thread_components, object_components)
        if extended.size != self._components.size:
            self._rebase_stamps(extended)
            self._bind_components(extended)
        return self._components

    def rotate_epoch(self, new_components: ClockComponents) -> int:
        """Begin a new epoch over ``new_components``; returns #retired.

        All per-thread / per-object clock state is discarded: the caller
        must replay the events that are still live (in their original
        order) through :meth:`observe` so every surviving event - and the
        thread/object clocks future events merge from - is re-timestamped
        in the new epoch's basis.  Components of the old set absent from
        the new one are *retired*: their slots are compacted away and no
        timestamp minted in the new epoch references them.
        :class:`~repro.core.timestamping.EpochClock` packages the replay
        and the re-timestamping invariant check.
        """
        old = self._components
        retired = len(old.thread_components - new_components.thread_components)
        retired += len(old.object_components - new_components.object_components)
        self._retired_total += retired
        self._epoch += 1
        self._thread_stamps.clear()
        self._object_stamps.clear()
        self._bind_components(new_components)
        return retired

    def _rebase_stamps(self, new_components: ClockComponents) -> None:
        """Re-express every stored clock over ``new_components`` by identity.

        Threads and objects frequently share one stamp object (the
        kernel stores the same instance for both endpoints of an event),
        so rebased results are cached per input stamp to preserve that
        sharing - the ``object_stamp is thread_stamp`` fast path in
        :meth:`observe` depends on it.

        When ``new_components`` is a pure *append* of the current set
        (what :meth:`ClockComponents.extended` produces: new threads
        after the old thread block, new objects at the end, relative
        order preserved) the rebase is three slices and two zero pads
        per stored vector instead of a per-slot identity lookup - the
        difference between component growth being free and it dominating
        the online warm-up phase.

        The cache is keyed by stamp *identity* (``id``), not value:
        hashing a ``k``-slot tuple per stored stamp would cost more than
        the rebase itself, and identity is exactly what the cache must
        preserve.  The input stamps stay referenced by the two stamp
        dicts (and ``keep``) for the duration, so ids cannot be
        recycled mid-rebase.
        """
        old = self._components
        old_order = old.ordered
        old_threads = len(old.thread_components)
        old_size = old.size
        new_order = new_components.ordered
        added_threads = (
            len(new_components.thread_components) - old_threads
        )
        object_block = old_threads + added_threads
        is_append = (
            added_threads >= 0
            and new_order[:old_threads] == old_order[:old_threads]
            and new_order[object_block:object_block + (old_size - old_threads)]
            == old_order[old_threads:]
        )
        rebased: Dict[int, Timestamp] = {}
        keep: List[Timestamp] = []
        if is_append:
            thread_pad = (0,) * added_threads
            object_pad = (0,) * (new_components.size - old_size - added_threads)

            def rebase(stamp: Timestamp) -> Timestamp:
                cached = rebased.get(id(stamp))
                if cached is None:
                    values = stamp._values
                    cached = Timestamp._from_trusted(
                        new_components,
                        values[:old_threads]
                        + thread_pad
                        + values[old_threads:]
                        + object_pad,
                    )
                    rebased[id(stamp)] = cached
                    keep.append(stamp)
                return cached

        else:

            def rebase(stamp: Timestamp) -> Timestamp:
                cached = rebased.get(id(stamp))
                if cached is None:
                    cached = rebase_timestamp(stamp, new_components)
                    rebased[id(stamp)] = cached
                    keep.append(stamp)
                return cached

        for vertex, stamp in self._thread_stamps.items():
            self._thread_stamps[vertex] = rebase(stamp)
        for vertex, stamp in self._object_stamps.items():
            self._object_stamps[vertex] = rebase(stamp)

    def reset(self) -> None:
        """Forget all clock state."""
        self._thread_stamps.clear()
        self._object_stamps.clear()
