"""Array-backed mutable clock kernel: the timestamping hot path.

The immutable :class:`~repro.core.clock.Timestamp` API is the right
interface for applications, but deriving every event timestamp through
``merged()`` + ``incremented()`` costs two to three :class:`Timestamp`
constructions per event, each of which re-validates its values slot by
slot.  At the scales the paper targets (Theorem 3 only pays off when the
thread/object counts are large) that interpreter overhead dwarfs the
``O(k)`` work the paper analyses.

:class:`ClockKernel` is the engine behind
:class:`~repro.core.timestamping.VectorClockProtocol`: it applies the
Section III-C update rule

    ``e.v = max(p.v, q.v); e.v[q] += 1 if q ∈ C; e.v[p] += 1 if p ∈ C``

on plain integer arrays (Python lists, i.e. contiguous pointer arrays) and
mints exactly one immutable :class:`Timestamp` per event through the
trusted constructor, skipping re-validation.  The resulting timestamps are
bit-identical to the ones the naive ``merged``/``incremented`` derivation
produces; the property test suite asserts this on random computations.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.clock import Timestamp
from repro.core.components import ClockComponents
from repro.exceptions import ComponentError
from repro.graph.bipartite import Vertex


class ClockKernel:
    """Mutable per-thread / per-object clock state for one protocol run.

    Parameters
    ----------
    components:
        The clock's component set; fixes the vector dimension and the slot
        index of every component.
    strict:
        When ``True`` (the default), observing an operation whose thread
        and object are both outside the component set raises
        :class:`ComponentError`; when ``False`` the operation is merged but
        not incremented (see ``VectorClockProtocol`` for why that loses the
        vector clock property).
    """

    __slots__ = (
        "_components",
        "_strict",
        "_zero",
        "_thread_slot",
        "_object_slot",
        "_thread_stamps",
        "_object_stamps",
    )

    def __init__(self, components: ClockComponents, strict: bool = True) -> None:
        self._components = components
        self._strict = strict
        self._zero = Timestamp.zero(components)
        thread_set = components.thread_components
        object_set = components.object_components
        self._thread_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in thread_set
        }
        self._object_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in object_set
        }
        self._thread_stamps: Dict[Vertex, Timestamp] = {}
        self._object_stamps: Dict[Vertex, Timestamp] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    def thread_stamp(self, thread: Vertex) -> Timestamp:
        """Current clock of ``thread`` as an immutable timestamp."""
        return self._thread_stamps.get(thread, self._zero)

    def object_stamp(self, obj: Vertex) -> Timestamp:
        """Current clock of ``obj`` as an immutable timestamp."""
        return self._object_stamps.get(obj, self._zero)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp.

        One list, one tuple and one :class:`Timestamp` are allocated per
        covered event; nothing is re-validated.
        """
        thread_stamp = self._thread_stamps.get(thread)
        object_stamp = self._object_stamps.get(obj)
        object_slot = self._object_slot.get(obj)
        thread_slot = self._thread_slot.get(thread)

        if thread_slot is None and object_slot is None:
            if self._strict:
                raise ComponentError(
                    f"operation ({thread!r}, {obj!r}) is not covered by the "
                    f"clock components"
                )
            # Merge-only (no increment): the degenerate non-strict path.
            stamp = self._merge_only(thread_stamp, object_stamp)
            self._thread_stamps[thread] = stamp
            self._object_stamps[obj] = stamp
            return stamp

        if thread_stamp is None:
            values = list(object_stamp._values) if object_stamp is not None else [
                0
            ] * self._components.size
        elif object_stamp is None or object_stamp is thread_stamp:
            values = list(thread_stamp._values)
        else:
            values = [
                a if a >= b else b
                for a, b in zip(thread_stamp._values, object_stamp._values)
            ]
        if object_slot is not None:
            values[object_slot] += 1
        if thread_slot is not None:
            values[thread_slot] += 1
        stamp = Timestamp._from_trusted(self._components, tuple(values))
        self._thread_stamps[thread] = stamp
        self._object_stamps[obj] = stamp
        return stamp

    def _merge_only(
        self, thread_stamp: Optional[Timestamp], object_stamp: Optional[Timestamp]
    ) -> Timestamp:
        """Bare merge for an uncovered event (non-strict mode only)."""
        if thread_stamp is None and object_stamp is None:
            return self._zero
        if thread_stamp is None:
            return object_stamp
        if object_stamp is None or object_stamp is thread_stamp:
            return thread_stamp
        return thread_stamp.merged(object_stamp)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all clock state."""
        self._thread_stamps.clear()
        self._object_stamps.clear()
