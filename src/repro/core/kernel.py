"""Array-backed mutable clock kernel: the timestamping hot path.

The immutable :class:`~repro.core.clock.Timestamp` API is the right
interface for applications, but deriving every event timestamp through
``merged()`` + ``incremented()`` costs two to three :class:`Timestamp`
constructions per event, each of which re-validates its values slot by
slot.  At the scales the paper targets (Theorem 3 only pays off when the
thread/object counts are large) that interpreter overhead dwarfs the
``O(k)`` work the paper analyses.

:class:`ClockKernel` is the engine behind
:class:`~repro.core.timestamping.VectorClockProtocol`: it applies the
Section III-C update rule

    ``e.v = max(p.v, q.v); e.v[q] += 1 if q ∈ C; e.v[p] += 1 if p ∈ C``

on plain integer arrays (Python lists, i.e. contiguous pointer arrays) and
mints exactly one immutable :class:`Timestamp` per event through the
trusted constructor, skipping re-validation.  The resulting timestamps are
bit-identical to the ones the naive ``merged``/``incremented`` derivation
produces; the property test suite asserts this on random computations.

The kernel is also the mutable substrate of the *lifecycle-aware* clock
protocols (sliding-window monitoring): its component set can grow
(:meth:`ClockKernel.extend_components` - the online setting appends
components as uncovered events arrive) and can be *rotated*
(:meth:`ClockKernel.rotate_epoch` - a new epoch begins over a new
component set, retired components' slots are compacted away, and the
caller replays the live window so every surviving event is re-timestamped
in the new epoch's basis).  Timestamps minted in an epoch reference only
that epoch's components; :class:`~repro.core.timestamping.EpochClock`
wraps the replay and proves verdict preservation with the
re-timestamping invariant check.  For the pure-retirement case - the new
set is a subset of the old and no retired component touches a live
event - :meth:`ClockKernel.rotate_epoch_delta` replaces the replay with
an ``O(live)`` slot *projection* of the surviving clock vectors;
``EpochClock.rotate`` owns the applicability gate and the fallback.

Backends
--------
Per-event :meth:`ClockKernel.observe` pays Python-interpreter overhead
per event no matter how lean the update rule is, so the kernel also has
*batch* entry points - :meth:`ClockKernel.timestamp_batch` (mint one
timestamp per event) and :meth:`ClockKernel.advance_batch` (advance the
clocks and fold a digest, minting nothing) - whose inner loop is
supplied by a pluggable :class:`KernelBackend`:

* ``python`` (:class:`PythonKernelBackend`, always available) - the
  batch loop keeps the working clock vectors as plain lists and applies
  *slot-delta* derivation on the hot path: whenever one operand of the
  merge is absent or the two endpoints already share one stamp, the new
  vector is a C-speed copy of the previous one with the one or two
  incremented slots bumped, skipping the ``O(k)`` Python-level
  element-wise maximum entirely;
* ``numpy`` (:class:`NumpyKernelBackend`, **gated**: selectable only
  when numpy imports, never required) - working vectors are *resident*
  ``int64`` arrays that persist across batches in an
  :class:`_ArrayCache` hung off the kernel, so the merge is a single C
  call (``np.maximum``) and a touched entity is converted from tuple
  form at most once per epoch, not once per batch; minted stamps are
  lazy :class:`_ArrayStamp` handles that materialise an exact
  Python-int tuple only on first ``_values`` access, so digest-only
  drivers (the engine's ``timestamps`` mode, the ``advance_batch``
  fold paths, which read their slot values straight off the resident
  arrays) never pay tuple construction at all.  Every materialised
  timestamp - and therefore every causal verdict - is bit-identical to
  the pure-Python derivation; the property-test suite asserts that
  identity on random computations.

Cache coherence is a *contract*, not a convention: any
:class:`ClockKernel` method that mutates component layout or clock
values must call an invalidation hook
(:meth:`ClockKernel._invalidate_cache` / :meth:`ClockKernel._cache_evict`,
or assign ``self._cache`` directly) or be listed in
:data:`CACHE_SAFE_METHODS` with its justification.  Lint rule C205
enforces this statically; the hypothesis suite asserts cached/uncached
bit-identity across the invalidation edges (component extension, epoch
rotation, checkpoint/resume, backend switches).

Backend selection: an explicit argument to :class:`ClockKernel` wins,
then :func:`set_default_backend`, then the ``REPRO_KERNEL_BACKEND``
environment variable, then ``python``.  Requesting ``numpy`` without
numpy installed raises a clean :class:`~repro.exceptions.ClockError`.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.clock import Timestamp
from repro.core.components import ClockComponents
from repro.exceptions import ClockError, ComponentError
from repro.graph.bipartite import Vertex

# Telemetry write handle (stdlib-only import; repro.obs deliberately
# imports nothing back from the core).  Every use below follows the
# batch-granularity pattern: fetch once, guard on ``is not None``, so
# the disabled cost never lands on a per-event path.
from repro.obs.registry import active as _metrics_active

try:  # The gate: numpy is an optional accelerator, never a requirement.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Backend names.
PYTHON_BACKEND = "python"
NUMPY_BACKEND = "numpy"

#: :class:`ClockKernel` methods that touch component layout or clock
#: values but are exempt from lint rule C205's invalidation-hook
#: requirement, each with the reason the resident-array cache stays
#: coherent without a hook.  Keep the justifications current: the lint
#: rule only checks membership, reviewers check the reasoning.
CACHE_SAFE_METHODS = (
    # Component growth is pure append (ClockComponents.extended keeps old
    # threads a prefix of the thread block and old objects a prefix of the
    # object block), so cached arrays stay valid under the deferred
    # pad-on-read transform _ArrayCache.sync applies at the next batch;
    # nothing to invalidate.  The non-append defensive path invalidates
    # inside _rebase_stamps.
    "extend_components",
    # Rebinds the slot maps / zero stamp to a component set; it mutates no
    # clock values itself, and every mutating caller (rotate_epoch,
    # extend_components via _rebase_stamps) owns its cache decision.
    "_bind_components",
)

#: 64-bit mixing constants of the stamp-digest fold (FNV prime / Knuth).
_FOLD_MASK = (1 << 64) - 1
_FOLD_PRIME = 0x100000001B3


def fold_stamp_values(fold: int, thread_value: int, object_value: int) -> int:
    """Fold one event's incremented slot values into a running 64-bit digest.

    The digest is an order-sensitive projection of the timestamp stream:
    for every stamped event it absorbs the post-increment values of the
    event's thread and object slots (0 for an absent side).  Any
    divergence in the clock state propagates into some later event's
    incremented slots, so pipelines, backends and worker layouts that
    disagree on any stamp disagree on the digest.  Pure ints, cheap, and
    picklable - the property that lets the sharded engine carry it
    through checkpoints.
    """
    return (
        (fold ^ (thread_value * 2654435761 + object_value * 40503 + 1))
        * _FOLD_PRIME
    ) & _FOLD_MASK


def _values_gather(indices: Sequence[int]):
    """A C-level tuple gather: ``values -> tuple(values[i] for i in indices)``.

    ``operator.itemgetter`` runs the whole gather inside the interpreter
    core, which is what keeps epoch-rotation projection ``O(live)`` with
    a memcpy-class constant instead of a bytecode-per-slot one.  The
    zero- and one-index cases are special-cased because ``itemgetter``
    changes shape there (no arguments is an error, one argument returns
    a bare value).
    """
    if not indices:
        return lambda values: ()
    if len(indices) == 1:
        index = indices[0]
        return lambda values: (values[index],)
    return itemgetter(*indices)


class _ProjectedStamp(Timestamp):
    """A lazily materialised re-layout of another stamp.

    Epoch rotation's slot projection and component extension's zero-pad
    share this one wrapper: ``_relayout`` maps the *source* stamp's
    value tuple into this stamp's component layout and runs on first
    ``_values`` access only, so a stamp that expires before anyone
    compares or folds it never pays the gather at all - the mechanism
    that turns an ``O(live · k)`` rotation spike into ``O(live)``
    wrapper allocations plus read-amortised slot work.

    ``_relayout`` is ``(gather, absent, threads)``: the compiled
    :func:`_values_gather` into the wrap-time basis, that basis's size
    (doubling as the absent-reads-zero sentinel - application appends
    one ``0`` so sentinel indices land on it, which is
    :func:`rebase_timestamp`'s rule without per-slot dict probes), and
    its thread-block length.  The source may sit in any *append
    ancestor* of that basis - the only stale shape lazy extension
    produces inside an epoch - and materialisation lifts it by counts
    alone (two zero pads at the block boundaries), so one relayout per
    rotation serves every live stamp regardless of when each was last
    touched.

    Re-wrapping an unmaterialised wrapper *chains*: the new wrapper's
    source is the old wrapper, and materialisation walks the chain
    iteratively, newest-in, oldest-out.  A chain link costs nothing
    until somebody reads the stamp, and most ledger stamps are never
    read - they expire out of the window - so the gathers a rotation
    defers are mostly never paid at all, not merely paid later.
    The chain's memory is proportional to steps survived unread (a
    constant-size link per rotation or extension), reclaimed wholesale
    when the stamp expires or materialises.  Bounding it tighter was
    tried and rejected: any depth cap must resolve the capped links
    (composing index maps costs the same ``O(k)`` per link as gathering
    values), and collapse cohorts are too small to amortise it, so a
    cap just smears the eager-rotation bill the chain exists to avoid.
    Like :class:`_ArrayStamp`, the wrapper *is* a :class:`Timestamp`
    (same comparisons, same accessors) and pickles as the plain
    materialised stamp it stands for.
    """

    __slots__ = ("_source", "_relayout")

    @classmethod
    def _make(
        cls, components: ClockComponents, source: Timestamp, relayout: tuple
    ) -> "_ProjectedStamp":
        stamp = object.__new__(cls)
        stamp._components = components
        stamp._source = source
        stamp._relayout = relayout
        return stamp

    def __getattr__(self, name: str):
        # Only the _values slot is lazy; anything else genuinely absent.
        if name != "_values":
            raise AttributeError(name)
        # Collect the unmaterialised chain iteratively: attribute-driven
        # recursion would hit the interpreter's recursion limit on a
        # stamp that survived a thousand rotations unread.
        pending = [self]
        source = self._source
        while type(source) is _ProjectedStamp and source._source is not None:
            pending.append(source)
            source = source._source
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.lazy_stamps.materialised", len(pending))
        values = source._values
        for node in reversed(pending):
            gather, absent, threads = node._relayout
            if len(values) != absent:
                # The source sits in a strict append ancestor of the
                # wrap-time basis: lift it by inserting zero pads after
                # its thread block and at its end.  Count-based - the
                # within-epoch invariant (rotation re-wraps every live
                # stamp, extension only appends) guarantees the shape.
                block = len(node._source._components.thread_components)
                values = (
                    values[:block]
                    + (0,) * (threads - block)
                    + values[block:]
                    + (0,) * (absent - threads - (len(values) - block))
                )
            values = gather(values + (0,))
            node._values = values
            # Release the chain link: a materialised wrapper no longer
            # pins its source (or the rotation's shared relayout).
            node._source = None
            node._relayout = None
        return values

    def __reduce__(self):
        # Checkpoints and cross-process transfers serialise the plain
        # materialised stamp, never the lazy structure.
        return (Timestamp._from_trusted, (self._components, self._values))


def rebase_timestamp(
    stamp: Timestamp, new_components: ClockComponents
) -> Timestamp:
    """Re-express ``stamp`` over ``new_components`` by component identity.

    Components present in both sets keep their values (whatever their
    slot index becomes); components only in the new set read zero - the
    value they would have carried had they existed when the stamp was
    minted.  The single rebasing rule shared by the kernel's component
    extension and :class:`~repro.core.timestamping.EpochClock`'s live
    ledger, so the two can never drift apart.
    """
    old_index = stamp.components._index
    values = tuple(
        stamp._values[old_index[c]] if c in old_index else 0
        for c in new_components.ordered
    )
    return Timestamp._from_trusted(new_components, values)


# ---------------------------------------------------------------------------
# Batch backends
# ---------------------------------------------------------------------------
class KernelBackend:
    """Strategy supplying the kernel's batch inner loop.

    Backends are stateless between calls: all clock state lives in the
    :class:`ClockKernel`, batch-scoped working representations are built
    on entry and written back before returning (also on error, so a
    strict-mode :class:`~repro.exceptions.ComponentError` raised mid-batch
    leaves exactly the events before it applied - the same prefix a
    sequential ``observe`` loop would have left).  Statelessness is also
    what makes kernels picklable across backends: a backend pickles as
    its name.
    """

    name = "abstract"

    def timestamp_batch(
        self, kernel: "ClockKernel", pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Timestamp]:
        raise NotImplementedError

    def advance_batch(
        self,
        kernel: "ClockKernel",
        pairs: Sequence[Tuple[Vertex, Vertex]],
        fold: int,
    ) -> int:
        raise NotImplementedError

    def __reduce__(self):
        # Checkpoints must stay loadable anywhere: a shard pickled under
        # the numpy backend unpickles on a numpy-less host as the python
        # backend (bit-identical by contract) instead of failing the
        # whole resume; the resuming run re-pins its own --backend right
        # after loading anyway.
        return (_backend_from_checkpoint, (self.name,))


class PythonKernelBackend(KernelBackend):
    """The always-available pure-Python batch loop (slot-delta hot path)."""

    name = PYTHON_BACKEND

    def timestamp_batch(self, kernel, pairs):
        # Minting a Timestamp per event needs a fresh tuple per event
        # anyway, so the minted stamps themselves are the working state:
        # this is observe() with the attribute lookups hoisted out of the
        # loop and the slot-delta fast paths applied to the tuples.
        #
        # Cache coherence (C205): this loop replaces stamps without going
        # through the resident-array cache, so any cached vectors for the
        # touched endpoints go stale - evict them up front.  When the
        # kernel never ran an array batch the cache is None and this is a
        # single attribute load.
        cache = kernel._cache
        if cache is not None:
            cache.evict_pairs(pairs)
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.batch.python_batches")
            registry.add("kernel.batch.python_events", len(pairs))
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        from_trusted = Timestamp._from_trusted
        stamps: List[Timestamp] = []
        append = stamps.append
        for thread, obj in pairs:
            thread_stamp = thread_stamps.get(thread)
            object_stamp = object_stamps.get(obj)
            object_slot = object_slots.get(obj)
            thread_slot = thread_slots.get(thread)
            if thread_slot is None and object_slot is None:
                if kernel._strict:
                    raise ComponentError(
                        f"operation ({thread!r}, {obj!r}) is not covered by "
                        f"the clock components"
                    )
                stamp = kernel._merge_only(thread_stamp, object_stamp)
                thread_stamps[thread] = stamp
                object_stamps[obj] = stamp
                append(stamp)
                continue
            if thread_stamp is None:
                values = (
                    list(object_stamp._values)
                    if object_stamp is not None
                    else [0] * size
                )
            elif object_stamp is None or object_stamp is thread_stamp:
                values = list(thread_stamp._values)
            else:
                a = thread_stamp._values
                b = object_stamp._values
                values = [x if x >= y else y for x, y in zip(a, b)]
            if object_slot is not None:
                values[object_slot] += 1
            if thread_slot is not None:
                values[thread_slot] += 1
            stamp = from_trusted(components, tuple(values))
            thread_stamps[thread] = stamp
            object_stamps[obj] = stamp
            append(stamp)
        return stamps

    def advance_batch(self, kernel, pairs, fold):
        # The digest-only loop keeps working vectors as plain lists
        # (frozen by convention once shared) and mints nothing: stamps
        # for the touched entities are materialised once at the batch
        # boundary, preserving the thread/object stamp *sharing* the
        # per-event fast path depends on.
        #
        # Cache coherence (C205): same up-front eviction as
        # timestamp_batch - this loop's write-back bypasses the
        # resident-array cache.
        cache = kernel._cache
        if cache is not None:
            cache.evict_pairs(pairs)
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.batch.python_batches")
            registry.add("kernel.batch.python_events", len(pairs))
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        thread_work: Dict[Vertex, list] = {}
        object_work: Dict[Vertex, list] = {}
        try:
            for thread, obj in pairs:
                thread_values = thread_work.get(thread)
                if thread_values is None:
                    stamp = thread_stamps.get(thread)
                    if stamp is not None:
                        thread_values = list(stamp._values)
                object_values = object_work.get(obj)
                if object_values is None:
                    stamp = object_stamps.get(obj)
                    if stamp is not None:
                        object_values = list(stamp._values)
                object_slot = object_slots.get(obj)
                thread_slot = thread_slots.get(thread)
                if thread_slot is None and object_slot is None:
                    if kernel._strict:
                        raise ComponentError(
                            f"operation ({thread!r}, {obj!r}) is not covered "
                            f"by the clock components"
                        )
                    # Merge-only: no increment, digest sees (0, 0).
                    if thread_values is None:
                        values = (
                            object_values
                            if object_values is not None
                            else [0] * size
                        )
                    elif (
                        object_values is None or object_values is thread_values
                    ):
                        values = thread_values
                    else:
                        values = [
                            x if x >= y else y
                            for x, y in zip(thread_values, object_values)
                        ]
                    thread_work[thread] = values
                    object_work[obj] = values
                    fold = (
                        (fold ^ 1) * _FOLD_PRIME
                    ) & _FOLD_MASK
                    continue
                # Slot-delta fast paths: copy + bump instead of an O(k)
                # Python-level element-wise max whenever one operand is
                # absent or both endpoints already share one vector.
                if thread_values is None:
                    values = (
                        object_values.copy()
                        if object_values is not None
                        else [0] * size
                    )
                elif object_values is None or object_values is thread_values:
                    values = thread_values.copy()
                else:
                    values = [
                        x if x >= y else y
                        for x, y in zip(thread_values, object_values)
                    ]
                if object_slot is not None:
                    values[object_slot] += 1
                if thread_slot is not None:
                    values[thread_slot] += 1
                thread_work[thread] = values
                object_work[obj] = values
                fold = (
                    (
                        fold
                        ^ (
                            (values[thread_slot] if thread_slot is not None else 0)
                            * 2654435761
                            + (values[object_slot] if object_slot is not None else 0)
                            * 40503
                            + 1
                        )
                    )
                    * _FOLD_PRIME
                ) & _FOLD_MASK
        finally:
            _write_back_lists(
                components, thread_work, object_work, thread_stamps, object_stamps
            )
        return fold


def _write_back_lists(components, thread_work, object_work,
                      thread_stamps, object_stamps) -> None:
    """Mint one Timestamp per unique working vector and store it.

    The identity cache preserves stamp *sharing*: when a thread and an
    object ended the batch on the same vector (they were endpoints of
    the same last event), they get the same Timestamp instance, which is
    what the ``object_stamp is thread_stamp`` per-event fast path and
    the rebase cache key on.  Working vectors stay referenced by the
    work dicts until this completes, so ``id`` keys cannot be recycled.
    """
    minted: Dict[int, Timestamp] = {}
    from_trusted = Timestamp._from_trusted
    for vertex, values in thread_work.items():
        key = id(values)
        stamp = minted.get(key)
        if stamp is None:
            stamp = from_trusted(components, tuple(values))
            minted[key] = stamp
        thread_stamps[vertex] = stamp
    for vertex, values in object_work.items():
        key = id(values)
        stamp = minted.get(key)
        if stamp is None:
            stamp = from_trusted(components, tuple(values))
            minted[key] = stamp
        object_stamps[vertex] = stamp


class _ArrayCache:
    """Cross-batch resident ``int64`` working vectors of one kernel.

    Maps touched threads/objects to the array holding their current
    clock, so consecutive batches re-enter the numpy inner loop with a
    dict lookup instead of a tuple-to-array conversion per touched
    entity.  One *layout tag* (``born_threads``, ``born_size``) covers
    every stored array: arrays only enter the cache at write-back, which
    always happens right after :meth:`sync`, so they all share the
    layout the kernel had at that moment.

    Component growth is **deferred pad-on-read**: ``extend_components``
    does not touch the cache (see :data:`CACHE_SAFE_METHODS`); the next
    batch's :meth:`sync` notices the layout drift - two integer
    compares on the hot path - and simply forgets the stale arrays.
    Entities actually touched afterwards are rebuilt lazily, one pad
    each, straight from their :class:`_ArrayStamp` handle's resident
    array (see :func:`_handle_array`); entities never touched again
    cost nothing, which is what makes warm-up growth (an extension
    every few events while the cover assembles) near-free.  Because
    :meth:`ClockComponents.extended` is pure append (old threads stay a
    prefix of the thread block, old objects a prefix of the object
    block, across any number of compositions), the pad is two slice
    copies parameterised only by the birth and current layouts.

    Coherence with the kernel's stamp dicts is the C205 contract: every
    mutation of clock values outside the numpy write-back must evict the
    touched entries (:meth:`evict`/:meth:`evict_pairs`) or drop the
    cache wholesale (``kernel._cache = None``).  Arrays in the cache are
    never mutated in place - the inner loop derives a *fresh* array
    before incrementing - so eviction is about staleness, not aliasing.
    """

    __slots__ = ("threads", "objects", "born_threads", "born_size")

    def __init__(self, components: ClockComponents) -> None:
        self.threads: Dict[Vertex, object] = {}
        self.objects: Dict[Vertex, object] = {}
        self.born_threads = len(components.thread_components)
        self.born_size = components.size

    def sync(self, components: ClockComponents) -> None:
        """Reconcile the cache with ``components``' layout if it grew.

        Stale arrays are dropped, not padded: the stamp handles keep the
        resident vectors alive, and :func:`_handle_array` rebuilds a
        touched entity's entry with one lazy pad on its next read.  Two
        integer compares when nothing changed - the hot-path cost.
        """
        new_threads = len(components.thread_components)
        new_size = components.size
        if new_size == self.born_size and new_threads == self.born_threads:
            return
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.array_cache.invalidations")
        self.threads.clear()
        self.objects.clear()
        self.born_threads = new_threads
        self.born_size = new_size

    def evict(self, thread: Vertex, obj: Vertex) -> None:
        """Forget one event's endpoints (their stamps changed elsewhere)."""
        registry = _metrics_active()
        if registry is None:
            self.threads.pop(thread, None)
            self.objects.pop(obj, None)
            return
        evicted = (self.threads.pop(thread, None) is not None) + (
            self.objects.pop(obj, None) is not None
        )
        if evicted:
            registry.add("kernel.array_cache.evictions", evicted)

    def evict_pairs(self, pairs: Sequence[Tuple[Vertex, Vertex]]) -> None:
        """Forget every endpoint of ``pairs`` ahead of a non-array batch."""
        threads = self.threads
        objects = self.objects
        registry = _metrics_active()
        before = len(threads) + len(objects) if registry is not None else 0
        for thread, obj in pairs:
            threads.pop(thread, None)
            objects.pop(obj, None)
        if registry is not None:
            evicted = before - len(threads) - len(objects)
            if evicted:
                registry.add("kernel.array_cache.evictions", evicted)


class _ArrayStamp(Timestamp):
    """A lazily materialised :class:`Timestamp` over a resident array.

    The numpy write-back stores these handles in the kernel's stamp
    dicts (and returns them from ``timestamp_batch``) instead of eagerly
    converting every touched vector back to a Python tuple.  The handle
    *is* a ``Timestamp`` - same comparisons, same accessors - but its
    ``_values`` tuple is built on first attribute access, so digest-only
    drivers that never look at a stamp's values never pay ``tolist()``
    or tuple construction.

    The wrapped array is never mutated (the inner loop always derives a
    fresh array before incrementing), so materialisation is stable.  A
    handle can outlive component growth: ``_born_threads`` plus the
    array's length record the append-only layout it was minted under,
    and materialisation zero-pads into the handle's component set - the
    same identity-preserving transform ``rebase_timestamp`` implements
    slot by slot.  Handles pickle (and deepcopy) as plain eagerly
    materialised ``Timestamp`` objects, so checkpoints stay loadable on
    numpy-less hosts.
    """

    __slots__ = ("_array", "_born_threads")

    @classmethod
    def _make(
        cls, components: ClockComponents, array: object, born_threads: int
    ) -> "_ArrayStamp":
        stamp = object.__new__(cls)
        stamp._components = components
        stamp._array = array
        stamp._born_threads = born_threads
        return stamp

    def __getattr__(self, name: str):
        # Only the _values slot is lazy; anything else genuinely absent.
        if name != "_values":
            raise AttributeError(name)
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.lazy_stamps.materialised")
        components = self._components
        raw = self._array.tolist()
        born_threads = self._born_threads
        threads = len(components.thread_components)
        size = components.size
        if threads == born_threads and size == len(raw):
            values = tuple(raw)
        else:
            values = (
                tuple(raw[:born_threads])
                + (0,) * (threads - born_threads)
                + tuple(raw[born_threads:])
                + (0,) * (size - threads - (len(raw) - born_threads))
            )
        self._values = values
        return values

    def __reduce__(self):
        # Checkpoints must stay loadable on numpy-less hosts, so a handle
        # serialises as the plain materialised Timestamp it stands for.
        return (Timestamp._from_trusted, (self._components, self._values))


def _handle_array(stamp: "_ArrayStamp", threads: int, size: int):
    """A ``(threads, size)``-layout ``int64`` array of ``stamp``'s values.

    The array-path fast lane of a cache miss: instead of materialising
    the handle's tuple and re-converting, the resident array is reused
    directly when the layout matches, or zero-padded with two slice
    copies when components were appended since the handle was minted.
    Never mutates (or returns a view of a region that will be mutated
    of) the handle's array - callers treat working arrays as frozen.
    """
    values = stamp._array
    born_threads = stamp._born_threads
    if born_threads == threads and len(values) == size:
        return values
    wide = _np.zeros(size, dtype=_np.int64)
    wide[:born_threads] = values[:born_threads]
    wide[threads:threads + (len(values) - born_threads)] = (
        values[born_threads:]
    )
    return wide


class NumpyKernelBackend(KernelBackend):
    """The gated numpy batch loop: resident-array clocks, C-speed merge.

    Working vectors are ``int64`` arrays resident across batches in the
    kernel's :class:`_ArrayCache` (one conversion per touched entity per
    *epoch*, not per batch) and the element-wise maximum is a single
    ``np.maximum`` call.  Values re-enter the immutable
    :class:`Timestamp` world through lazy :class:`_ArrayStamp` handles,
    whose first-use materialisation restores exact Python ints - verdict
    bit-identity with the python backend is asserted by the property
    tests.
    """

    name = NUMPY_BACKEND

    #: Below this batch length the array working-state setup costs more
    #: than it saves, so short runs (warm-up segments between component
    #: additions, expire-riddled streams) take the pure-Python loop -
    #: *until* the kernel has a populated resident cache, at which point
    #: arrays win at any length (a cache hit is one dict lookup, while
    #: falling back would evict cached vectors and rebuild them from
    #: materialised tuples next batch).  Re-tuned for the cached regime:
    #: the old per-batch backend needed 48 events to amortise its
    #: conversions; with conversions amortised across the epoch the
    #: crossover sits far lower.  Purely a wall-clock switch: both loops
    #: are bit-identical.
    MIN_ARRAY_BATCH = 16

    #: Below this clock dimension ``np.maximum`` call overhead exceeds
    #: the Python element-wise loop it replaces, so small clocks take
    #: the Python loop too.  The two modes used to differ by ~3x because
    #: minting converted every stamp back to a Python tuple; lazy
    #: ``_ArrayStamp`` handles removed that per-event cost, so the mint
    #: crossover collapsed to nearly the advance one.  Same bit-identity
    #: argument as above in both cases.
    MIN_ARRAY_DIM_ADVANCE = 32
    MIN_ARRAY_DIM_MINT = 48

    def __init__(self) -> None:
        self._fallback = PythonKernelBackend()

    def _use_arrays(self, kernel, pairs, min_dim) -> bool:
        cache = kernel._cache
        if cache is not None and (cache.threads or cache.objects):
            # Resident vectors exist: stay on the array path so they are
            # reused rather than evicted (the python fallback would have
            # to materialise their handles' tuples anyway).
            return True
        return (
            len(pairs) >= self.MIN_ARRAY_BATCH
            and kernel._components.size >= min_dim
        )

    def timestamp_batch(self, kernel, pairs):
        if not self._use_arrays(kernel, pairs, self.MIN_ARRAY_DIM_MINT):
            return self._fallback.timestamp_batch(kernel, pairs)
        stamps: List[Timestamp] = []
        self._run(kernel, pairs, 0, stamps)
        return stamps

    def advance_batch(self, kernel, pairs, fold):
        if not self._use_arrays(kernel, pairs, self.MIN_ARRAY_DIM_ADVANCE):
            return self._fallback.advance_batch(kernel, pairs, fold)
        return self._run(kernel, pairs, fold, None)

    def _run(self, kernel, pairs, fold, stamps):
        np = _np
        if np is None:  # pragma: no cover - resolve_backend gates this
            raise ClockError("numpy backend invoked without numpy installed")
        components = kernel._components
        size = components.size
        thread_slots = kernel._thread_slot
        object_slots = kernel._object_slot
        thread_stamps = kernel._thread_stamps
        object_stamps = kernel._object_stamps
        cache = kernel._cache
        if cache is None:
            cache = kernel._cache = _ArrayCache(components)
        else:
            # Deferred pad-on-read: component growth since the last array
            # batch is reconciled here, once, instead of on every extend.
            cache.sync(components)
        cached_threads = cache.threads
        cached_objects = cache.objects
        registry = _metrics_active()
        if registry is not None:
            registry.add("kernel.batch.array_batches")
            registry.add("kernel.batch.array_events", len(pairs))
        born_threads = len(components.thread_components)
        maximum = np.maximum
        as_array = np.array
        zeros = np.zeros
        int64 = np.int64
        make = _ArrayStamp._make
        thread_work: Dict[Vertex, object] = {}
        object_work: Dict[Vertex, object] = {}
        # Handles minted this batch, keyed by the id of their array.  The
        # write-back reuses them so a returned stamp and the stored
        # thread/object stamp of its endpoints are the *same* object,
        # like the python backend's loop; handle entries keep their array
        # alive, so ids cannot be recycled while the dict is in use.
        minted: Dict[int, Timestamp] = {}
        append_stamp = stamps.append if stamps is not None else None
        try:
            for thread, obj in pairs:
                thread_values = thread_work.get(thread)
                if thread_values is None:
                    thread_values = cached_threads.get(thread)
                    if thread_values is None:
                        stamp = thread_stamps.get(thread)
                        if stamp is not None:
                            thread_values = (
                                _handle_array(stamp, born_threads, size)
                                if type(stamp) is _ArrayStamp
                                else as_array(stamp._values, dtype=int64)
                            )
                object_values = object_work.get(obj)
                if object_values is None:
                    object_values = cached_objects.get(obj)
                    if object_values is None:
                        stamp = object_stamps.get(obj)
                        if stamp is not None:
                            object_values = (
                                _handle_array(stamp, born_threads, size)
                                if type(stamp) is _ArrayStamp
                                else as_array(stamp._values, dtype=int64)
                            )
                object_slot = object_slots.get(obj)
                thread_slot = thread_slots.get(thread)
                if thread_slot is None and object_slot is None:
                    if kernel._strict:
                        raise ComponentError(
                            f"operation ({thread!r}, {obj!r}) is not covered "
                            f"by the clock components"
                        )
                    if thread_values is None:
                        values = (
                            object_values
                            if object_values is not None
                            else zeros(size, dtype=int64)
                        )
                    elif (
                        object_values is None or object_values is thread_values
                    ):
                        values = thread_values
                    else:
                        values = maximum(thread_values, object_values)
                    thread_work[thread] = values
                    object_work[obj] = values
                    if append_stamp is not None:
                        key = id(values)
                        stamp = minted.get(key)
                        if stamp is None:
                            stamp = make(components, values, born_threads)
                            minted[key] = stamp
                        append_stamp(stamp)
                    else:
                        fold = ((fold ^ 1) * _FOLD_PRIME) & _FOLD_MASK
                    continue
                if thread_values is None:
                    values = (
                        object_values.copy()
                        if object_values is not None
                        else zeros(size, dtype=int64)
                    )
                elif object_values is None or object_values is thread_values:
                    values = thread_values.copy()
                else:
                    values = maximum(thread_values, object_values)
                if object_slot is not None:
                    values[object_slot] += 1
                if thread_slot is not None:
                    values[thread_slot] += 1
                thread_work[thread] = values
                object_work[obj] = values
                if append_stamp is not None:
                    stamp = make(components, values, born_threads)
                    minted[id(values)] = stamp
                    append_stamp(stamp)
                else:
                    # The fold reads its post-increment slot values
                    # straight off the resident array - no tuple, no
                    # Timestamp, just two scalar reads per event.
                    fold = (
                        (
                            fold
                            ^ (
                                (values.item(thread_slot) if thread_slot is not None else 0)
                                * 2654435761
                                + (values.item(object_slot) if object_slot is not None else 0)
                                * 40503
                                + 1
                            )
                        )
                        * _FOLD_PRIME
                    ) & _FOLD_MASK
        finally:
            # Hit/miss accounting must read membership *before* the
            # write-back repopulates the stores: an entity touched this
            # batch was a hit iff its vector was already resident when
            # the batch began (entries are only read, never added,
            # inside the loop above).  Entity-granular on purpose - the
            # cache's whole point is one conversion per touched entity,
            # so per-entity is the meaningful hit rate.
            if registry is not None:
                touched = len(thread_work) + len(object_work)
                hits = sum(
                    1 for vertex in thread_work if vertex in cached_threads
                ) + sum(1 for vertex in object_work if vertex in cached_objects)
                if hits:
                    registry.add("kernel.array_cache.hits", hits)
                if touched - hits:
                    registry.add("kernel.array_cache.misses", touched - hits)
            # Also on a strict-mode error: the events before the offender
            # are applied, and stamps and cache stay coherent (the batch
            # entered synced, and every array written carries the synced
            # layout).
            for cache_store, stamp_store, work in (
                (cached_threads, thread_stamps, thread_work),
                (cached_objects, object_stamps, object_work),
            ):
                for vertex, values in work.items():
                    key = id(values)
                    stamp = minted.get(key)
                    if stamp is None:
                        stamp = make(components, values, born_threads)
                        minted[key] = stamp
                    stamp_store[vertex] = stamp
                    cache_store[vertex] = values
        return fold


_BACKENDS: Dict[str, KernelBackend] = {PYTHON_BACKEND: PythonKernelBackend()}

#: Process-wide default set by :func:`set_default_backend` (``None`` defers
#: to the ``REPRO_KERNEL_BACKEND`` environment variable, then ``python``).
_DEFAULT_BACKEND: Optional[str] = None


def numpy_available() -> bool:
    """``True`` when the optional numpy backend can actually be selected."""
    return _np is not None


def available_backends() -> Tuple[str, ...]:
    """The backend names selectable in this process, python first."""
    if _np is not None:
        return (PYTHON_BACKEND, NUMPY_BACKEND)
    return (PYTHON_BACKEND,)


def default_backend_name() -> str:
    """The backend used when no explicit choice is made anywhere."""
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    return os.environ.get("REPRO_KERNEL_BACKEND", "").strip() or PYTHON_BACKEND


def default_backend_override() -> Optional[str]:
    """The explicit process-wide override, or ``None`` when unset.

    Distinct from :func:`default_backend_name`, which also folds in the
    environment variable and the ``python`` fallback - callers that pin
    a backend temporarily (the ratio sweep's workers) save this raw
    value and restore it, so they never clobber an ambient selection.
    """
    return _DEFAULT_BACKEND


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates availability immediately, so a CLI ``--backend numpy``
    without numpy fails at argument-handling time, not deep inside a run.
    """
    global _DEFAULT_BACKEND
    if name is not None:
        resolve_backend(name)
    _DEFAULT_BACKEND = name


def _backend_from_checkpoint(name: str) -> KernelBackend:
    """Unpickle entry point for backends: lenient where resolve is strict.

    See :meth:`KernelBackend.__reduce__` - an unavailable backend named
    by old state degrades to ``python`` rather than making the pickle
    unreadable.
    """
    try:
        return resolve_backend(name)
    except ClockError:
        return resolve_backend(PYTHON_BACKEND)


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """The backend instance for ``name`` (``None``: the current default).

    Raises :class:`~repro.exceptions.ClockError` for unknown names and
    for ``numpy`` when numpy is not importable - the gate that keeps the
    accelerator optional.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = default_backend_name()
    if name == NUMPY_BACKEND:
        if _np is None:
            raise ClockError(
                "kernel backend 'numpy' requested but numpy is not "
                "importable; install numpy or select the 'python' backend"
            )
        backend = _BACKENDS.get(NUMPY_BACKEND)
        if backend is None:
            backend = _BACKENDS[NUMPY_BACKEND] = NumpyKernelBackend()
        return backend
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ClockError(
            f"unknown kernel backend {name!r} "
            f"(expected one of: {', '.join(available_backends())})"
        ) from None


class ClockKernel:
    """Mutable per-thread / per-object clock state for one protocol run.

    Parameters
    ----------
    components:
        The clock's component set; fixes the vector dimension and the slot
        index of every component.
    strict:
        When ``True`` (the default), observing an operation whose thread
        and object are both outside the component set raises
        :class:`ComponentError`; when ``False`` the operation is merged but
        not incremented (see ``VectorClockProtocol`` for why that loses the
        vector clock property).
    backend:
        The :class:`KernelBackend` (or its name) supplying the batch inner
        loop; ``None`` resolves the process default (see the module
        docstring).  The backend never changes results, only wall-clock.
    """

    __slots__ = (
        "_components",
        "_strict",
        "_zero",
        "_thread_slot",
        "_object_slot",
        "_thread_stamps",
        "_object_stamps",
        "_epoch",
        "_retired_total",
        "_backend",
        "_cache",
    )

    def __init__(
        self,
        components: ClockComponents,
        strict: bool = True,
        backend: Optional[object] = None,
    ) -> None:
        self._strict = strict
        self._epoch = 0
        self._retired_total = 0
        self._backend = resolve_backend(backend)
        self._thread_stamps: Dict[Vertex, Timestamp] = {}
        self._object_stamps: Dict[Vertex, Timestamp] = {}
        self._cache: Optional[_ArrayCache] = None
        self._bind_components(components)

    def _bind_components(self, components: ClockComponents) -> None:
        """Point the kernel at ``components``: slot maps and the zero stamp."""
        self._components = components
        self._zero = Timestamp.zero(components)
        thread_set = components.thread_components
        object_set = components.object_components
        self._thread_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in thread_set
        }
        self._object_slot: Dict[Vertex, int] = {
            c: i for i, c in enumerate(components.ordered) if c in object_set
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def epoch(self) -> int:
        """How many times :meth:`rotate_epoch` has been applied."""
        return self._epoch

    @property
    def retired_total(self) -> int:
        """Total components retired across all epoch rotations so far."""
        return self._retired_total

    @property
    def backend_name(self) -> str:
        """Name of the backend supplying the batch inner loop."""
        return self._backend.name

    def set_backend(self, backend: Optional[object]) -> None:
        """Swap the batch backend (results are identical by contract).

        Used when resuming a checkpointed run under a different
        ``--backend``: the pickled kernel carries the backend it ran
        with, and the resuming configuration wins.  The resident-array
        cache needs no action here: the python loops evict what they
        touch, so a cache built by one backend stays coherent for the
        next.
        """
        self._backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    # Resident-array cache coherence (the C205 contract)
    # ------------------------------------------------------------------
    def _invalidate_cache(self) -> None:
        """Drop the backend's resident-array cache wholesale.

        The hook for mutations that reshape clock state beyond the
        cache's pure-append pad model (epoch rotation, resets, slot
        permutations).  Cheap and always safe: the next array batch
        rebuilds resident vectors from the stamp dicts.
        """
        if self._cache is not None:
            registry = _metrics_active()
            if registry is not None:
                registry.add("kernel.array_cache.invalidations")
        self._cache = None

    def _cache_evict(self, thread: Vertex, obj: Vertex) -> None:
        """Forget one event's endpoints from the resident-array cache.

        The targeted hook for per-event mutations (:meth:`observe`):
        the touched thread/object stamps are replaced outside the array
        write-back, so their cached vectors would go stale.
        """
        cache = self._cache
        if cache is not None:
            cache.evict(thread, obj)

    def __getstate__(self):
        # The resident-array cache is process-local working state: it
        # holds numpy arrays (unloadable on a numpy-less host) that the
        # backend rebuilds on demand, so checkpoints never carry it.
        # Stamp handles in the dicts serialise as materialised
        # Timestamps via _ArrayStamp.__reduce__ /
        # _ProjectedStamp.__reduce__.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_cache"
        }

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):
            # The pre-cache default slots form: (dict-state, slots-dict).
            state = state[1] or {}
        for slot, value in state.items():
            setattr(self, slot, value)
        self._cache = None

    def thread_stamp(self, thread: Vertex) -> Timestamp:
        """Current clock of ``thread`` as an immutable timestamp."""
        return self._thread_stamps.get(thread, self._zero)

    def object_stamp(self, obj: Vertex) -> Timestamp:
        """Current clock of ``obj`` as an immutable timestamp."""
        return self._object_stamps.get(obj, self._zero)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp.

        One list, one tuple and one :class:`Timestamp` are allocated per
        covered event; nothing is re-validated.
        """
        self._cache_evict(thread, obj)
        thread_stamp = self._thread_stamps.get(thread)
        object_stamp = self._object_stamps.get(obj)
        object_slot = self._object_slot.get(obj)
        thread_slot = self._thread_slot.get(thread)

        if thread_slot is None and object_slot is None:
            if self._strict:
                raise ComponentError(
                    f"operation ({thread!r}, {obj!r}) is not covered by the "
                    f"clock components"
                )
            # Merge-only (no increment): the degenerate non-strict path.
            stamp = self._merge_only(thread_stamp, object_stamp)
            self._thread_stamps[thread] = stamp
            self._object_stamps[obj] = stamp
            return stamp

        if thread_stamp is None:
            values = list(object_stamp._values) if object_stamp is not None else [
                0
            ] * self._components.size
        elif object_stamp is None or object_stamp is thread_stamp:
            values = list(thread_stamp._values)
        else:
            values = [
                a if a >= b else b
                for a, b in zip(thread_stamp._values, object_stamp._values)
            ]
        if object_slot is not None:
            values[object_slot] += 1
        if thread_slot is not None:
            values[thread_slot] += 1
        stamp = Timestamp._from_trusted(self._components, tuple(values))
        self._thread_stamps[thread] = stamp
        self._object_stamps[obj] = stamp
        return stamp

    def timestamp_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Timestamp]:
        """Apply the update rule to a whole chunk; one timestamp per event.

        Bit-identical to calling :meth:`observe` per pair (the property
        tests assert it for every backend), but the inner loop is the
        backend's: slot lookups and stamp allocation are amortised over
        the batch instead of being re-paid per Python call.  On a
        strict-mode coverage error the events preceding the offender are
        applied, exactly as a sequential loop would have left them.
        """
        return self._backend.timestamp_batch(self, pairs)

    def advance_batch(
        self, pairs: Sequence[Tuple[Vertex, Vertex]], fold: int = 0
    ) -> int:
        """Advance the clocks over a chunk without minting timestamps.

        The engine's hot path: per-thread/object clock state ends up
        exactly as after :meth:`timestamp_batch`, but no per-event
        :class:`Timestamp` is materialised - the returned value is
        ``fold`` advanced by :func:`fold_stamp_values` for every event,
        the digest the sharded engine carries into its fingerprint.
        """
        return self._backend.advance_batch(self, pairs, fold)

    def fold_event(
        self, fold: int, stamp: Timestamp, thread: Vertex, obj: Vertex
    ) -> int:
        """Fold one per-event stamp into the digest (per-event pipeline).

        The counterpart of :meth:`advance_batch`'s internal fold: both
        absorb the post-increment thread/object slot values, so the
        per-event and batched pipelines produce the same digest for the
        same stream.
        """
        thread_slot = self._thread_slot.get(thread)
        object_slot = self._object_slot.get(obj)
        values = stamp._values
        return fold_stamp_values(
            fold,
            values[thread_slot] if thread_slot is not None else 0,
            values[object_slot] if object_slot is not None else 0,
        )

    def _merge_only(
        self, thread_stamp: Optional[Timestamp], object_stamp: Optional[Timestamp]
    ) -> Timestamp:
        """Bare merge for an uncovered event (non-strict mode only)."""
        if thread_stamp is None and object_stamp is None:
            return self._zero
        if thread_stamp is None:
            return object_stamp
        if object_stamp is None or object_stamp is thread_stamp:
            return thread_stamp
        return thread_stamp.merged(object_stamp)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def extend_components(
        self,
        thread_components: Iterable[Vertex] = (),
        object_components: Iterable[Vertex] = (),
    ) -> ClockComponents:
        """Grow the component set in place (the online append-only step).

        Every stored thread/object clock is re-based onto the extended
        set by component *identity*: existing components keep their
        values (their slot index may move - thread slots precede object
        slots by convention), new components start at zero everywhere,
        which is exactly the value they would have had from the start.
        Returns the new component set.
        """
        extended = self._components.extended(thread_components, object_components)
        if extended.size != self._components.size:
            self._rebase_stamps(extended)
            self._bind_components(extended)
        return self._components

    def rotate_epoch(self, new_components: ClockComponents) -> int:
        """Begin a new epoch over ``new_components``; returns #retired.

        All per-thread / per-object clock state is discarded: the caller
        must replay the events that are still live (in their original
        order) through :meth:`observe` so every surviving event - and the
        thread/object clocks future events merge from - is re-timestamped
        in the new epoch's basis.  Components of the old set absent from
        the new one are *retired*: their slots are compacted away and no
        timestamp minted in the new epoch references them.
        :class:`~repro.core.timestamping.EpochClock` packages the replay
        and the re-timestamping invariant check.
        """
        old = self._components
        retired = len(old.thread_components - new_components.thread_components)
        retired += len(old.object_components - new_components.object_components)
        self._retired_total += retired
        self._epoch += 1
        self._thread_stamps.clear()
        self._object_stamps.clear()
        self._invalidate_cache()
        self._bind_components(new_components)
        return retired

    def rotate_epoch_delta(
        self,
        new_components: ClockComponents,
        live_threads: AbstractSet[Vertex],
        live_objects: AbstractSet[Vertex],
        live_stamps: Sequence[Timestamp],
    ) -> List[Timestamp]:
        """Begin a new epoch by *projection*; returns the re-based stamps.

        The incremental counterpart of :meth:`rotate_epoch` for the
        pure-retirement case: ``new_components`` must be a subset of the
        current set (retired slots drop, no additions).  Instead of
        discarding all clock state and replaying the live window, every
        surviving clock vector is *projected* - surviving slots gathered
        into the new order, retired slots dropped - in ``O(live)`` slot
        moves with no per-event update-rule work.  Thread/object clocks
        outside ``live_threads`` / ``live_objects`` are dropped: an
        endpoint with no live event contributes nothing to future merges
        that a replay would have kept.

        ``live_stamps`` run through the same identity-keyed projection
        cache as the endpoint clocks, preserving the instance sharing
        between the caller's ledger and the stamp dicts that the
        slot-delta fast paths rely on.  Returns the projections of
        ``live_stamps`` in input order.  The epoch / retired-total
        counters advance exactly as :meth:`rotate_epoch` would.

        When projection preserves causal verdicts - and the fallback to
        :meth:`rotate_epoch` + replay when it would not - is owned by
        :meth:`EpochClock.rotate
        <repro.core.timestamping.EpochClock.rotate>`'s applicability
        gate; this method trusts its caller on that.
        """
        old = self._components
        retired = len(old.thread_components - new_components.thread_components)
        retired += len(old.object_components - new_components.object_components)
        self._retired_total += retired
        self._epoch += 1
        project = self._project_stamps(
            new_components, live_threads, live_objects
        )
        stamps = [project(stamp) for stamp in live_stamps]
        self._invalidate_cache()
        self._bind_components(new_components)
        return stamps

    def _project_stamps(
        self,
        new_components: ClockComponents,
        live_threads: AbstractSet[Vertex],
        live_objects: AbstractSet[Vertex],
    ):
        """Project the endpoint clock dicts onto a subset of the layout.

        Prunes each stamp dict to its live endpoints, re-expresses every
        kept vector over ``new_components`` by gathering the surviving
        slots, and returns the projection function so the caller can run
        its own stamps through the same identity-keyed cache (see
        :meth:`_rebase_stamps` for why the cache is keyed by ``id`` and
        why ``keep`` pins the inputs).  Dropping slots breaks the
        resident-array cache's pure-append pad model, so the cache is
        invalidated wholesale here.

        An :class:`_ArrayStamp` gathers eagerly off its resident array
        (a C-level ``take``; the projected handle is born in the new
        layout, so later pad-on-read still applies).  Everything else -
        plain stamps, stale ledger entries lazy extension left in an
        append ancestor, wrappers from earlier rotations, materialised
        or not - takes one uniform path: wrap in a
        :class:`_ProjectedStamp` around the stamp *as is*, sharing the
        single relayout built here.  No per-stamp slot work, no
        per-basis map builds, no composition: count-based padding at
        materialisation absorbs stale bases, and chaining absorbs
        prior wrappers.  That uniformity is what flattens rotation p99
        - the rotation itself is ``O(live)`` constant-size allocations
        plus one ``O(k)`` gather compile, and deferred gathers are paid
        only for stamps somebody actually reads again (for ledger
        stamps, usually nobody does).
        """
        old = self._components
        old_index = old._index
        old_threads = len(old.thread_components)
        old_size = old.size
        gather = [old_index[c] for c in new_components.ordered]
        relayout = (_values_gather(gather), old_size, old_threads)
        new_threads = len(new_components.thread_components)
        projected: Dict[int, Timestamp] = {}
        keep: List[Timestamp] = []
        make = _ProjectedStamp._make

        def project(stamp: Timestamp) -> Timestamp:
            cached = projected.get(id(stamp))
            if cached is None:
                if type(stamp) is _ArrayStamp:
                    cached = _ArrayStamp._make(
                        new_components,
                        _handle_array(stamp, old_threads, old_size).take(
                            gather
                        ),
                        new_threads,
                    )
                else:
                    cached = make(new_components, stamp, relayout)
                projected[id(stamp)] = cached
                keep.append(stamp)
            return cached

        self._thread_stamps = {
            vertex: project(stamp)
            for vertex, stamp in self._thread_stamps.items()
            if vertex in live_threads
        }
        self._object_stamps = {
            vertex: project(stamp)
            for vertex, stamp in self._object_stamps.items()
            if vertex in live_objects
        }
        self._invalidate_cache()
        return project

    def _rebase_stamps(self, new_components: ClockComponents) -> None:
        """Re-express every stored clock over ``new_components`` by identity.

        Threads and objects frequently share one stamp object (the
        kernel stores the same instance for both endpoints of an event),
        so rebased results are cached per input stamp to preserve that
        sharing - the ``object_stamp is thread_stamp`` fast path in
        :meth:`observe` depends on it.

        When ``new_components`` is a pure *append* of the current set
        (what :meth:`ClockComponents.extended` produces: new threads
        after the old thread block, new objects at the end, relative
        order preserved) the rebase is three slices and two zero pads
        per stored vector instead of a per-slot identity lookup - the
        difference between component growth being free and it dominating
        the online warm-up phase.

        The cache is keyed by stamp *identity* (``id``), not value:
        hashing a ``k``-slot tuple per stored stamp would cost more than
        the rebase itself, and identity is exactly what the cache must
        preserve.  The input stamps stay referenced by the two stamp
        dicts (and ``keep``) for the duration, so ids cannot be
        recycled mid-rebase.
        """
        old = self._components
        old_order = old.ordered
        old_threads = len(old.thread_components)
        old_size = old.size
        new_order = new_components.ordered
        added_threads = (
            len(new_components.thread_components) - old_threads
        )
        object_block = old_threads + added_threads
        is_append = (
            added_threads >= 0
            and new_order[:old_threads] == old_order[:old_threads]
            and new_order[object_block:object_block + (old_size - old_threads)]
            == old_order[old_threads:]
        )
        rebased: Dict[int, Timestamp] = {}
        keep: List[Timestamp] = []
        if is_append:
            thread_pad = (0,) * added_threads
            object_pad = (0,) * (new_components.size - old_size - added_threads)
            # The pad as a relayout (sentinel old_size reads zero), for
            # re-wrapping unmaterialised projections; built lazily since
            # most extensions never meet one.
            pad_relayout: List[Optional[tuple]] = [None]

            def rebase(stamp: Timestamp) -> Timestamp:
                cached = rebased.get(id(stamp))
                if cached is None:
                    if type(stamp) is _ArrayStamp:
                        # A lazy handle rebases without materialising:
                        # the new handle shares the resident array, and
                        # its recorded birth layout already encodes the
                        # append-only pad materialisation will apply.
                        # This is what makes warm-up component growth
                        # near-free on the array path.
                        cached = _ArrayStamp._make(
                            new_components, stamp._array, stamp._born_threads
                        )
                    elif (
                        type(stamp) is _ProjectedStamp
                        and stamp._source is not None
                    ):
                        # An unmaterialised projection stays lazy: an
                        # eager pad here would force it and hand the
                        # rotation's deferred gather bill to the very
                        # next component extension.  Chaining keeps the
                        # extension O(1) per wrapper.
                        if pad_relayout[0] is None:
                            pad_relayout[0] = (
                                _values_gather(
                                    tuple(range(old_threads))
                                    + (old_size,) * added_threads
                                    + tuple(range(old_threads, old_size))
                                    + (old_size,) * len(object_pad)
                                ),
                                old_size,
                                old_threads,
                            )
                        cached = _ProjectedStamp._make(
                            new_components, stamp, pad_relayout[0]
                        )
                    else:
                        values = stamp._values
                        cached = Timestamp._from_trusted(
                            new_components,
                            values[:old_threads]
                            + thread_pad
                            + values[old_threads:]
                            + object_pad,
                        )
                    rebased[id(stamp)] = cached
                    keep.append(stamp)
                return cached

        else:
            # A non-append layout change breaks the cache's pure-append
            # pad model (slots permute), so the resident arrays cannot be
            # reconciled by sync(); drop them.  Unreachable from
            # extend_components (ClockComponents.extended always
            # appends), kept for direct callers.
            self._invalidate_cache()

            def rebase(stamp: Timestamp) -> Timestamp:
                cached = rebased.get(id(stamp))
                if cached is None:
                    cached = rebase_timestamp(stamp, new_components)
                    rebased[id(stamp)] = cached
                    keep.append(stamp)
                return cached

        for vertex, stamp in self._thread_stamps.items():
            self._thread_stamps[vertex] = rebase(stamp)
        for vertex, stamp in self._object_stamps.items():
            self._object_stamps[vertex] = rebase(stamp)

    def reset(self) -> None:
        """Forget all clock state."""
        self._thread_stamps.clear()
        self._object_stamps.clear()
        self._invalidate_cache()
