"""The vector clock protocol: timestamping events of a computation.

:class:`VectorClockProtocol` implements the update rules of Section II and
Section III-C of the paper for an arbitrary component set:

* every thread ``p`` and every object ``q`` keeps a current clock vector
  (initially all zeros);
* when thread ``p`` performs an operation ``e`` on object ``q``::

      e.v = max(p.v, q.v)
      if q is a component:  e.v[q] += 1
      if p is a component:  e.v[p] += 1
      p.v = q.v = e.v

The thread-based and object-based clocks of Section II are the special
cases where the component set is all threads or all objects respectively;
the mixed clock uses a vertex cover of the thread-object bipartite graph.

The protocol object is *incremental*: the runtime and the online simulator
feed it one operation at a time via :meth:`VectorClockProtocol.observe`,
and the offline pipeline feeds it a whole computation via
:meth:`VectorClockProtocol.timestamp_computation`.  The result of the
latter is a :class:`TimestampedComputation`, which bundles the computation
with the per-event timestamps and answers causality queries purely from the
timestamps (that is what Theorem 2 promises is possible).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.computation.event import Event, ObjectId, ThreadId
from repro.computation.trace import Computation
from repro.core.clock import Timestamp, ordering
from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel
from repro.exceptions import AmbiguousTimestampError, ClockError


class VectorClockProtocol:
    """Stateful executor of the (mixed) vector clock update rules.

    Parameters
    ----------
    components:
        The clock's component set.  Any event whose thread *and* object are
        both outside this set raises :class:`ComponentError` when observed
        (with ``strict=True``, the default), because such an event could
        never be ordered by the resulting timestamps.
    strict:
        When ``False``, uncovered events are still timestamped (with a bare
        merge and no increment).  This is only useful for demonstrating in
        tests and examples *why* coverage is required; production callers
        should leave it on.
    """

    def __init__(self, components: ClockComponents, strict: bool = True) -> None:
        self._components = components
        self._strict = strict
        self._kernel = ClockKernel(components, strict=strict)
        self._events_observed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def size(self) -> int:
        """The clock dimension (number of components)."""
        return self._components.size

    @property
    def events_observed(self) -> int:
        return self._events_observed

    def thread_clock(self, thread: ThreadId) -> Timestamp:
        """Current clock of ``thread`` (zero if it has not acted yet)."""
        return self._kernel.thread_stamp(thread)

    def object_clock(self, obj: ObjectId) -> Timestamp:
        """Current clock of ``obj`` (zero if it has not been accessed yet)."""
        return self._kernel.object_stamp(obj)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: ThreadId, obj: ObjectId) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp."""
        stamped = self._kernel.observe(thread, obj)
        self._events_observed += 1
        return stamped

    def observe_event(self, event: Event) -> Timestamp:
        """Apply the update rule for an already-minted :class:`Event`."""
        return self.observe(event.thread, event.obj)

    # ------------------------------------------------------------------
    # Whole computations
    # ------------------------------------------------------------------
    def timestamp_computation(self, computation: Computation) -> "TimestampedComputation":
        """Timestamp every event of ``computation`` in interleaving order.

        The protocol instance must be fresh (no events observed yet);
        reusing one across computations would leak causality between them.

        This is the batch hot path: it drives the
        :class:`~repro.core.kernel.ClockKernel` directly, avoiding the
        per-event method dispatch and bookkeeping of :meth:`observe`.
        """
        if self._events_observed:
            raise ClockError(
                "protocol has already observed events; use a fresh instance"
            )
        # Mark the protocol used *before* iterating: a ComponentError on an
        # uncovered event mid-computation leaves the kernel dirty, and the
        # fresh-instance guard above must keep refusing reuse (reset() is
        # the recovery path).
        self._events_observed = len(computation)
        observe = self._kernel.observe
        timestamps: Dict[Event, Timestamp] = {
            event: observe(event.thread, event.obj) for event in computation
        }
        return TimestampedComputation(computation, self._components, timestamps)

    def reset(self) -> None:
        """Forget all state so the protocol can be reused from scratch."""
        self._kernel.reset()
        self._events_observed = 0


class TimestampedComputation:
    """A computation together with one timestamp per event.

    Provides the timestamp-only causality queries that applications
    (debuggers, race detectors, recovery protocols) actually use: given two
    events, compare their vectors - no access to the original partial order
    is needed.
    """

    def __init__(
        self,
        computation: Computation,
        components: ClockComponents,
        timestamps: Mapping[Event, Timestamp],
    ) -> None:
        missing = [e for e in computation if e not in timestamps]
        if missing:
            raise ClockError(f"{len(missing)} events have no timestamp")
        self._computation = computation
        self._components = components
        self._timestamps = dict(timestamps)

    # -- accessors --------------------------------------------------------
    @property
    def computation(self) -> Computation:
        return self._computation

    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def clock_size(self) -> int:
        return self._components.size

    def timestamp(self, event: Event) -> Timestamp:
        try:
            return self._timestamps[event]
        except KeyError:
            raise ClockError(f"event {event} was not timestamped") from None

    def __getitem__(self, event: Event) -> Timestamp:
        return self.timestamp(event)

    def __iter__(self) -> Iterator[Tuple[Event, Timestamp]]:
        for event in self._computation:
            yield event, self._timestamps[event]

    def __len__(self) -> int:
        return len(self._computation)

    # -- causality from timestamps ----------------------------------------
    def _distinguishable_stamps(
        self, a: Event, b: Event
    ) -> Tuple[Timestamp, Timestamp]:
        """The two timestamps, raising unless they can be compared.

        Two *distinct* events carrying *identical* timestamps cannot be
        ordered: a valid (covering) protocol increments at least one slot
        per event, so this only happens when the protocol ran with
        ``strict=False`` and left some events uncovered.  Answering
        ``"equal"`` for different events would silently corrupt causality
        queries, so every query path surfaces the condition as
        :class:`AmbiguousTimestampError` instead.
        """
        stamp_a = self.timestamp(a)
        stamp_b = self.timestamp(b)
        if stamp_a == stamp_b and a != b:
            raise AmbiguousTimestampError(
                f"events {a} and {b} carry identical timestamps "
                f"{stamp_a!r}; they were not covered by the clock "
                f"components (protocol ran with strict=False), so their "
                f"causal order cannot be recovered from timestamps"
            )
        return stamp_a, stamp_b

    def happened_before(self, earlier: Event, later: Event) -> bool:
        """``True`` iff the timestamps say ``earlier → later``.

        Raises :class:`AmbiguousTimestampError` if the two events are
        distinct but carry identical (uncovered) timestamps.
        """
        stamp_earlier, stamp_later = self._distinguishable_stamps(earlier, later)
        return stamp_earlier < stamp_later

    def concurrent(self, a: Event, b: Event) -> bool:
        """``True`` iff the timestamps say ``a ∥ b``.

        Raises :class:`AmbiguousTimestampError` if the two events are
        distinct but carry identical (uncovered) timestamps.
        """
        if a == b:
            return False
        stamp_a, stamp_b = self._distinguishable_stamps(a, b)
        return stamp_a.concurrent_with(stamp_b)

    def relation(self, a: Event, b: Event) -> str:
        """One of ``"before"``, ``"after"``, ``"concurrent"``, ``"equal"``.

        ``"equal"`` is only ever answered for the *same* event passed
        twice; distinct events with identical timestamps raise
        :class:`AmbiguousTimestampError` (see :meth:`happened_before`).
        """
        return ordering(*self._distinguishable_stamps(a, b))

    # -- reporting ----------------------------------------------------------
    def storage_cost(self) -> int:
        """Total number of integers stored across all event timestamps."""
        return self.clock_size * len(self._computation)

    def format_table(self, limit: Optional[int] = None) -> str:
        """A small human-readable table of events and their timestamps."""
        lines = [f"clock components ({self.clock_size}): {list(self._components.ordered)}"]
        for position, (event, stamp) in enumerate(self):
            if limit is not None and position >= limit:
                lines.append(f"... ({len(self) - limit} more events)")
                break
            lines.append(f"  {event.describe():60s} {stamp!r}")
        return "\n".join(lines)


def timestamp_with_components(
    computation: Computation, components: ClockComponents
) -> TimestampedComputation:
    """Convenience one-shot helper: timestamp ``computation`` with ``components``."""
    return VectorClockProtocol(components).timestamp_computation(computation)
