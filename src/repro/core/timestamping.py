"""The vector clock protocol: timestamping events of a computation.

:class:`VectorClockProtocol` implements the update rules of Section II and
Section III-C of the paper for an arbitrary component set:

* every thread ``p`` and every object ``q`` keeps a current clock vector
  (initially all zeros);
* when thread ``p`` performs an operation ``e`` on object ``q``::

      e.v = max(p.v, q.v)
      if q is a component:  e.v[q] += 1
      if p is a component:  e.v[p] += 1
      p.v = q.v = e.v

The thread-based and object-based clocks of Section II are the special
cases where the component set is all threads or all objects respectively;
the mixed clock uses a vertex cover of the thread-object bipartite graph.

The protocol object is *incremental*: the runtime and the online simulator
feed it one operation at a time via :meth:`VectorClockProtocol.observe`,
and the offline pipeline feeds it a whole computation via
:meth:`VectorClockProtocol.timestamp_computation`.  The result of the
latter is a :class:`TimestampedComputation`, which bundles the computation
with the per-event timestamps and answers causality queries purely from the
timestamps (that is what Theorem 2 promises is possible).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.computation.event import Event, ObjectId, ThreadId
from repro.computation.trace import Computation
from repro.core.clock import Timestamp, ordering
from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel, rebase_timestamp
from repro.exceptions import (
    AmbiguousTimestampError,
    ClockError,
    RetimestampingError,
)
from repro.graph.bipartite import Vertex

# Telemetry write handle (same pattern as the kernel: fetch once per
# rotation, guard on ``is not None`` - never a per-event cost).
from repro.obs.registry import active as _metrics_active


class VectorClockProtocol:
    """Stateful executor of the (mixed) vector clock update rules.

    Parameters
    ----------
    components:
        The clock's component set.  Any event whose thread *and* object are
        both outside this set raises :class:`ComponentError` when observed
        (with ``strict=True``, the default), because such an event could
        never be ordered by the resulting timestamps.
    strict:
        When ``False``, uncovered events are still timestamped (with a bare
        merge and no increment).  This is only useful for demonstrating in
        tests and examples *why* coverage is required; production callers
        should leave it on.
    backend:
        Kernel batch backend (name or instance) for the chunked entry
        points; ``None`` resolves the process default.  Never changes the
        timestamps, only the wall-clock of the batch paths.
    """

    def __init__(
        self,
        components: ClockComponents,
        strict: bool = True,
        backend: Optional[object] = None,
    ) -> None:
        self._components = components
        self._strict = strict
        self._kernel = ClockKernel(components, strict=strict, backend=backend)
        self._events_observed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def size(self) -> int:
        """The clock dimension (number of components)."""
        return self._components.size

    @property
    def events_observed(self) -> int:
        return self._events_observed

    def thread_clock(self, thread: ThreadId) -> Timestamp:
        """Current clock of ``thread`` (zero if it has not acted yet)."""
        return self._kernel.thread_stamp(thread)

    def object_clock(self, obj: ObjectId) -> Timestamp:
        """Current clock of ``obj`` (zero if it has not been accessed yet)."""
        return self._kernel.object_stamp(obj)

    # ------------------------------------------------------------------
    # The update rule
    # ------------------------------------------------------------------
    def observe(self, thread: ThreadId, obj: ObjectId) -> Timestamp:
        """Apply the update rule for one operation and return its timestamp."""
        stamped = self._kernel.observe(thread, obj)
        self._events_observed += 1
        return stamped

    def observe_event(self, event: Event) -> Timestamp:
        """Apply the update rule for an already-minted :class:`Event`."""
        return self.observe(event.thread, event.obj)

    def timestamp_batch(
        self, pairs: Sequence[Tuple[ThreadId, ObjectId]]
    ) -> List[Timestamp]:
        """Apply the update rule to a chunk of operations, in order.

        The incremental batch entry point: unlike
        :meth:`timestamp_computation` it may be called repeatedly, so a
        streaming consumer can feed the protocol chunk by chunk.  The
        returned timestamps are bit-identical to per-event
        :meth:`observe` calls - the loop is just the kernel backend's.

        Under the numpy backend the returned objects may be *lazy*
        stamp handles: full :class:`~repro.core.clock.Timestamp`
        instances whose value tuple is materialised from the backend's
        resident array on first use (any comparison, ``.values``,
        hashing, pickling).  Digest-only consumers that never look
        inside a stamp therefore never pay tuple construction.  The
        laziness is unobservable by contract: values, ordering,
        identity sharing between a returned stamp and the stored
        endpoint clocks, and pickle output (plain eager timestamps,
        loadable without numpy) all match the python backend exactly.
        """
        pairs = list(pairs)
        # Count before running, like timestamp_computation: a coverage
        # error mid-batch leaves the kernel dirty, and the fresh-instance
        # guards must keep refusing reuse (reset() is the recovery path).
        self._events_observed += len(pairs)
        return self._kernel.timestamp_batch(pairs)

    # ------------------------------------------------------------------
    # Whole computations
    # ------------------------------------------------------------------
    def timestamp_computation(self, computation: Computation) -> "TimestampedComputation":
        """Timestamp every event of ``computation`` in interleaving order.

        The protocol instance must be fresh (no events observed yet);
        reusing one across computations would leak causality between them.

        This is the batch hot path: it drives the
        :class:`~repro.core.kernel.ClockKernel` directly, avoiding the
        per-event method dispatch and bookkeeping of :meth:`observe`.
        """
        if self._events_observed:
            raise ClockError(
                "protocol has already observed events; use a fresh instance"
            )
        # Mark the protocol used *before* iterating: a ComponentError on an
        # uncovered event mid-computation leaves the kernel dirty, and the
        # fresh-instance guard above must keep refusing reuse (reset() is
        # the recovery path).
        self._events_observed = len(computation)
        events = list(computation)
        stamps = self._kernel.timestamp_batch(
            [(event.thread, event.obj) for event in events]
        )
        timestamps: Dict[Event, Timestamp] = dict(zip(events, stamps))
        return TimestampedComputation(computation, self._components, timestamps)

    def reset(self) -> None:
        """Forget all state so the protocol can be reused from scratch."""
        self._kernel.reset()
        self._events_observed = 0


class TimestampedComputation:
    """A computation together with one timestamp per event.

    Provides the timestamp-only causality queries that applications
    (debuggers, race detectors, recovery protocols) actually use: given two
    events, compare their vectors - no access to the original partial order
    is needed.
    """

    def __init__(
        self,
        computation: Computation,
        components: ClockComponents,
        timestamps: Mapping[Event, Timestamp],
    ) -> None:
        missing = [e for e in computation if e not in timestamps]
        if missing:
            raise ClockError(f"{len(missing)} events have no timestamp")
        self._computation = computation
        self._components = components
        self._timestamps = dict(timestamps)

    # -- accessors --------------------------------------------------------
    @property
    def computation(self) -> Computation:
        return self._computation

    @property
    def components(self) -> ClockComponents:
        return self._components

    @property
    def clock_size(self) -> int:
        return self._components.size

    def timestamp(self, event: Event) -> Timestamp:
        try:
            return self._timestamps[event]
        except KeyError:
            raise ClockError(f"event {event} was not timestamped") from None

    def __getitem__(self, event: Event) -> Timestamp:
        return self.timestamp(event)

    def __iter__(self) -> Iterator[Tuple[Event, Timestamp]]:
        for event in self._computation:
            yield event, self._timestamps[event]

    def __len__(self) -> int:
        return len(self._computation)

    # -- causality from timestamps ----------------------------------------
    def _distinguishable_stamps(
        self, a: Event, b: Event
    ) -> Tuple[Timestamp, Timestamp]:
        """The two timestamps, raising unless they can be compared.

        Two *distinct* events carrying *identical* timestamps cannot be
        ordered: a valid (covering) protocol increments at least one slot
        per event, so this only happens when the protocol ran with
        ``strict=False`` and left some events uncovered.  Answering
        ``"equal"`` for different events would silently corrupt causality
        queries, so every query path surfaces the condition as
        :class:`AmbiguousTimestampError` instead.
        """
        stamp_a = self.timestamp(a)
        stamp_b = self.timestamp(b)
        if stamp_a == stamp_b and a != b:
            raise AmbiguousTimestampError(
                f"events {a} and {b} carry identical timestamps "
                f"{stamp_a!r}; they were not covered by the clock "
                f"components (protocol ran with strict=False), so their "
                f"causal order cannot be recovered from timestamps"
            )
        return stamp_a, stamp_b

    def happened_before(self, earlier: Event, later: Event) -> bool:
        """``True`` iff the timestamps say ``earlier → later``.

        Raises :class:`AmbiguousTimestampError` if the two events are
        distinct but carry identical (uncovered) timestamps.
        """
        stamp_earlier, stamp_later = self._distinguishable_stamps(earlier, later)
        return stamp_earlier < stamp_later

    def concurrent(self, a: Event, b: Event) -> bool:
        """``True`` iff the timestamps say ``a ∥ b``.

        Raises :class:`AmbiguousTimestampError` if the two events are
        distinct but carry identical (uncovered) timestamps.
        """
        if a == b:
            return False
        stamp_a, stamp_b = self._distinguishable_stamps(a, b)
        return stamp_a.concurrent_with(stamp_b)

    def relation(self, a: Event, b: Event) -> str:
        """One of ``"before"``, ``"after"``, ``"concurrent"``, ``"equal"``.

        ``"equal"`` is only ever answered for the *same* event passed
        twice; distinct events with identical timestamps raise
        :class:`AmbiguousTimestampError` (see :meth:`happened_before`).
        """
        return ordering(*self._distinguishable_stamps(a, b))

    # -- reporting ----------------------------------------------------------
    def storage_cost(self) -> int:
        """Total number of integers stored across all event timestamps."""
        return self.clock_size * len(self._computation)

    def format_table(self, limit: Optional[int] = None) -> str:
        """A small human-readable table of events and their timestamps."""
        lines = [f"clock components ({self.clock_size}): {list(self._components.ordered)}"]
        for position, (event, stamp) in enumerate(self):
            if limit is not None and position >= limit:
                lines.append(f"... ({len(self) - limit} more events)")
                break
            lines.append(f"  {event.describe():60s} {stamp!r}")
        return "\n".join(lines)


def timestamp_with_components(
    computation: Computation, components: ClockComponents
) -> TimestampedComputation:
    """Convenience one-shot helper: timestamp ``computation`` with ``components``."""
    return VectorClockProtocol(components).timestamp_computation(computation)


# ---------------------------------------------------------------------------
# Lifecycle-aware timestamping (sliding-window monitoring)
# ---------------------------------------------------------------------------
def verify_retimestamping(
    before: Sequence[Timestamp],
    after: Sequence[Timestamp],
    components: ClockComponents,
) -> None:
    """The re-timestamping invariant check of an epoch rotation.

    ``before``/``after`` are the live events' timestamps in the same
    (stream) order, pre- and post-rotation.  The check proves, event by
    event and pair by pair:

    * every new timestamp is expressed over the new epoch's component
      set - i.e. no timestamp issued in the live epoch references a
      retired component;
    * the pairwise causal verdict (``before`` / ``after`` /
      ``concurrent``) of every pair of live events is unchanged.

    The second property is what makes rotation *correct* rather than
    merely compact: the replay only sees the live window, but with a
    FIFO window every happened-before chain between two live events runs
    entirely through live events (any intermediate is newer than the
    older endpoint), so full-history verdicts are recoverable from the
    replay - and this check asserts they were.  Quadratic in the window
    length; enable it in tests and audits, not per-rotation hot paths.
    """
    if len(before) != len(after):
        raise RetimestampingError(
            f"rotation replayed {len(after)} events but {len(before)} were live"
        )
    for stamp in after:
        if stamp.components is not components:
            raise RetimestampingError(
                "a replayed timestamp references a component set other than "
                "the live epoch's (retired components must not leak)"
            )
    for i in range(len(before)):
        for j in range(i + 1, len(before)):
            old_verdict = ordering(before[i], before[j])
            new_verdict = ordering(after[i], after[j])
            if old_verdict != new_verdict:
                raise RetimestampingError(
                    f"rotation changed the verdict of live events {i} and "
                    f"{j}: {old_verdict!r} -> {new_verdict!r}"
                )


# -- rotation strategy selection --------------------------------------------
#: Rotation strategy names (see :meth:`EpochClock.rotate`).
DELTA_ROTATION = "delta"
REPLAY_ROTATION = "replay"

#: Strategies :class:`EpochClock` accepts.  Both are always available
#: (unlike kernel backends, neither needs an optional dependency): the
#: choice only moves work between the rotation boundary and nothing -
#: causal verdicts, tokens, retired counts and engine fingerprints are
#: identical by contract, and the property tests assert it.
ROTATION_STRATEGIES = (DELTA_ROTATION, REPLAY_ROTATION)

_DEFAULT_ROTATION: Optional[str] = None


def resolve_rotation(name: str) -> str:
    """Validate a rotation strategy name; returns it unchanged."""
    if name not in ROTATION_STRATEGIES:
        raise ClockError(
            f"unknown rotation strategy {name!r}; available strategies: "
            f"{', '.join(ROTATION_STRATEGIES)}"
        )
    return name


def default_rotation_name() -> str:
    """The strategy a rotation-less :class:`EpochClock` uses right now.

    Resolution order mirrors the kernel-backend default:
    :func:`set_default_rotation`, then the ``REPRO_ROTATION_STRATEGY``
    environment variable, then ``"delta"``.
    """
    if _DEFAULT_ROTATION is not None:
        return _DEFAULT_ROTATION
    env = os.environ.get("REPRO_ROTATION_STRATEGY", "").strip()
    if env:
        return resolve_rotation(env)
    return DELTA_ROTATION


def default_rotation_override() -> Optional[str]:
    """The :func:`set_default_rotation` override currently installed.

    ``None`` when unset.  Callers that pin the strategy for a scoped run
    (the engine's shard loop, benchmark legs) save this, install their
    own, and restore in a ``finally`` - restoring the *override* rather
    than the resolved name keeps a surrounding environment-variable
    default live after the scope ends.
    """
    return _DEFAULT_ROTATION


def set_default_rotation(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-default strategy."""
    global _DEFAULT_ROTATION
    _DEFAULT_ROTATION = None if name is None else resolve_rotation(name)


class EpochClock:
    """Lifecycle-aware timestamping: ``observe`` / ``expire`` / ``rotate``.

    The windowed counterpart of :class:`VectorClockProtocol`.  Where the
    batch protocol timestamps a fixed computation over a fixed component
    set, this clock serves a monitoring loop in which events *expire*
    (fall out of the sliding window) and the component set changes over
    time - growing between epochs (:meth:`extend`, the online
    append-only step) and shrinking or being wholesale rebuilt at epoch
    boundaries (:meth:`rotate`).

    Every observed event receives a monotonically increasing integer
    *token*; causality queries (:meth:`relation`,
    :meth:`happened_before`, :meth:`concurrent`) are answered for any
    pair of **live** tokens, in the current epoch's basis.  A rotation
    re-stamps the live window over the new component set - by slot
    *projection* when the rotation is a pure retirement, by full replay
    otherwise (see :meth:`rotate`); with ``check_invariant=True`` every
    rotation replays and runs :func:`verify_retimestamping` before
    committing.

    ``rotation`` selects the strategy per clock (``"delta"`` /
    ``"replay"``); ``None`` resolves :func:`default_rotation_name` at
    each rotation, so :func:`set_default_rotation` /
    ``REPRO_ROTATION_STRATEGY`` steer rotation-less clocks process-wide.
    """

    def __init__(
        self,
        components: Optional[ClockComponents] = None,
        strict: bool = True,
        check_invariant: bool = False,
        backend: Optional[object] = None,
        rotation: Optional[str] = None,
    ) -> None:
        self._kernel = ClockKernel(
            components if components is not None else ClockComponents(),
            strict=strict,
            backend=backend,
        )
        self._check_invariant = check_invariant
        self._rotation = (
            resolve_rotation(rotation) if rotation is not None else None
        )
        # token -> (thread, obj); dicts preserve insertion (= stream) order
        # under deletion, which is what rotation's replay relies on.
        self._live_pairs: Dict[int, Tuple[Vertex, Vertex]] = {}
        self._live_stamps: Dict[int, Timestamp] = {}
        self._tokens_by_pair: Dict[Tuple[Vertex, Vertex], Deque[int]] = {}
        self._next_token = 0

    # -- introspection ------------------------------------------------------
    @property
    def components(self) -> ClockComponents:
        return self._kernel.components

    @property
    def size(self) -> int:
        """The current clock dimension (number of live components)."""
        return self._kernel.components.size

    @property
    def epoch(self) -> int:
        return self._kernel.epoch

    @property
    def retired_total(self) -> int:
        return self._kernel.retired_total

    @property
    def live_count(self) -> int:
        return len(self._live_pairs)

    def live_tokens(self) -> Tuple[int, ...]:
        """Tokens of the live events, oldest first."""
        return tuple(self._live_pairs)

    def timestamp(self, token: int) -> Timestamp:
        """The (current-epoch) timestamp of a live event.

        A stamp minted before a component extension is stored in its
        mint-time basis and re-based onto the current set here, on first
        read (see :meth:`extend`); the re-based stamp is written back so
        repeated queries pay the rebase once.
        """
        try:
            stamp = self._live_stamps[token]
        except KeyError:
            raise ClockError(f"event token {token} is not live") from None
        components = self._kernel.components
        if stamp.components is not components:
            stamp = rebase_timestamp(stamp, components)
            self._live_stamps[token] = stamp
        return stamp

    # -- the lifecycle ------------------------------------------------------
    def observe(self, thread: Vertex, obj: Vertex) -> int:
        """Timestamp one operation; returns its (stable) event token."""
        stamp = self._kernel.observe(thread, obj)
        token = self._next_token
        self._next_token += 1
        self._live_pairs[token] = (thread, obj)
        self._live_stamps[token] = stamp
        self._tokens_by_pair.setdefault((thread, obj), deque()).append(token)
        return token

    def observe_batch(self, pairs: Sequence[Tuple[Vertex, Vertex]]) -> List[int]:
        """Timestamp a chunk of operations; returns their event tokens.

        Equivalent to calling :meth:`observe` per pair (same stamps, same
        tokens), with the kernel's batch loop doing the per-event work.
        Lifecycle ticks (:meth:`expire`, :meth:`rotate`) cannot occur
        *inside* a batch by construction - callers chunk their streams at
        lifecycle boundaries, as the sharded engine does.  The stored
        live stamps may be the numpy backend's lazy handles (see
        :meth:`VectorClockProtocol.timestamp_batch`); causality queries
        materialise them transparently on first use.
        """
        pairs = list(pairs)
        stamps = self._kernel.timestamp_batch(pairs)
        tokens: List[int] = []
        token = self._next_token
        for pair, stamp in zip(pairs, stamps):
            self._live_pairs[token] = pair
            self._live_stamps[token] = stamp
            self._tokens_by_pair.setdefault(pair, deque()).append(token)
            tokens.append(token)
            token += 1
        self._next_token = token
        return tokens

    def expire(self, thread: Vertex, obj: Vertex) -> int:
        """Expire the *oldest* live occurrence of ``(thread, obj)``.

        Mirrors the multiset contract of the stream layer (never more
        expires than inserts per pair); returns the expired token.
        """
        queue = self._tokens_by_pair.get((thread, obj))
        if not queue:
            raise ClockError(
                f"no live occurrence of ({thread!r}, {obj!r}) to expire"
            )
        token = queue.popleft()
        if not queue:
            del self._tokens_by_pair[(thread, obj)]
        del self._live_pairs[token]
        del self._live_stamps[token]
        return token

    def extend(
        self,
        thread_components: Tuple[Vertex, ...] = (),
        object_components: Tuple[Vertex, ...] = (),
    ) -> None:
        """Append components (no epoch change); live stamps re-base lazily.

        New components are zero in every existing timestamp - the value
        they would have carried had they been present from the start -
        so no verdict among recorded events can change; only the basis
        widens.  The live ledger is *not* eagerly rewritten: a stamp is
        re-based onto the current component set on first read
        (:meth:`timestamp`), mirroring the kernel cache's pad-on-read,
        so warm-up component growth costs ``O(1)`` per extension here
        instead of ``O(live)``.
        """
        self._kernel.extend_components(thread_components, object_components)

    def rotate(self, new_components: ClockComponents) -> int:
        """Enter a new epoch: retire/rebuild components, re-stamp the window.

        Two strategies (see the class docstring for how one is chosen):

        * ``"replay"`` - the kernel discards all clock state and the
          live events are replayed in stream order, which both
          re-timestamps them over ``new_components`` (compacted: retired
          slots are gone) and rebuilds the per-thread / per-object
          clocks future events merge from.  ``O(window)`` update-rule
          applications per rotation - the latency spike ROADMAP item 5
          charges to epoch boundaries.
        * ``"delta"`` (the default) - when the rotation is a **pure
          retirement** (``new_components`` is a subset of the current
          set *and* no retired component is an endpoint of a live
          event), the kernel instead projects every live stamp and
          surviving endpoint clock: retired slots dropped, surviving
          slots gathered, ``O(live)`` slot moves with no update-rule
          work (:meth:`ClockKernel.rotate_epoch_delta
          <repro.core.kernel.ClockKernel.rotate_epoch_delta>`).  Any
          rotation outside that case silently falls back to replay; the
          ``clock.rotation.delta`` / ``clock.rotation.replay`` counters
          record which path ran.

        Projection preserves every causal verdict among live and future
        events: the gate guarantees each live event keeps the component
        whose slot its stamping incremented (its mint-time *marker*),
        marker values are untouched by projection and monotone under
        future merges, and the dropped clocks of non-live endpoints
        influence nothing a replay would have kept.  Projected stamp
        *values* are however not the replayed values (replay
        renormalises to the live window; projection keeps pre-rotation
        magnitudes), so the strategies are verdict- and token-identical
        but not value-identical - which is why ``check_invariant=True``
        always forces replay: :func:`verify_retimestamping` is the
        oracle the property tests compare the delta path against.

        Returns the number of retired components.  With
        ``check_invariant=True`` the re-timestamping invariant is
        verified before the new stamps are visible; on violation the
        clock is unusable and the caller should treat the mechanism
        driving it as buggy.
        """
        old = self._kernel.components
        strategy = (
            self._rotation
            if self._rotation is not None
            else default_rotation_name()
        )
        use_delta = (
            strategy == DELTA_ROTATION
            and not self._check_invariant
            and new_components.thread_components <= old.thread_components
            and new_components.object_components <= old.object_components
        )
        if use_delta:
            live_threads = {thread for thread, _ in self._live_pairs.values()}
            live_objects = {obj for _, obj in self._live_pairs.values()}
            use_delta = not (
                (old.thread_components - new_components.thread_components)
                & live_threads
                or (old.object_components - new_components.object_components)
                & live_objects
            )
        registry = _metrics_active()
        if use_delta:
            tokens = list(self._live_pairs)
            projected = self._kernel.rotate_epoch_delta(
                new_components,
                live_threads,
                live_objects,
                [self._live_stamps[token] for token in tokens],
            )
            self._live_stamps = dict(zip(tokens, projected))
            if registry is not None:
                registry.add("clock.rotation.delta")
            return old.size - new_components.size
        old_stamps: List[Timestamp] = (
            [self.timestamp(token) for token in self._live_pairs]
            if self._check_invariant
            else []
        )
        retired = self._kernel.rotate_epoch(new_components)
        new_stamps: Dict[int, Timestamp] = {}
        for token, (thread, obj) in self._live_pairs.items():
            new_stamps[token] = self._kernel.observe(thread, obj)
        if self._check_invariant:
            verify_retimestamping(
                old_stamps, list(new_stamps.values()), new_components
            )
        self._live_stamps = new_stamps
        if registry is not None:
            registry.add("clock.rotation.replay")
        return retired

    # -- causality queries on live events -----------------------------------
    def relation(self, token_a: int, token_b: int) -> str:
        """``"before"`` / ``"after"`` / ``"concurrent"`` / ``"equal"``."""
        return ordering(self.timestamp(token_a), self.timestamp(token_b))

    def happened_before(self, token_a: int, token_b: int) -> bool:
        return self.timestamp(token_a) < self.timestamp(token_b)

    def concurrent(self, token_a: int, token_b: int) -> bool:
        if token_a == token_b:
            return False
        return self.timestamp(token_a).concurrent_with(self.timestamp(token_b))
