"""Chain clocks (Agarwal & Garg, PODC 2005) - the closest prior baseline.

The paper's related-work section singles out chain clocks as the most
closely related technique: instead of one component per process, a chain
clock uses one component per *chain* of an online chain decomposition of
the computation poset, guaranteeing no more than ``|P|`` chains for the
simple variant.

This module implements that simple variant for the thread-object model:

* events are revealed in an interleaving order (a linear extension);
* each new event is appended to an existing chain whose current last
  element happens-before it (we check the two immediate predecessors - the
  previous event of the same thread and the previous event on the same
  object - which is sufficient because any chain predecessor of the new
  event is causally before one of those two);
* if no such chain exists, a new chain is opened.

The number of chains is an upper bound on the clock size the chain-clock
approach needs; the extended evaluation compares it with the paper's mixed
clock (which is bounded by ``min(n, m)`` instead of ``n``).  Timestamps use
:class:`~repro.online.protocol.SparseTimestamp` because the number of
chains grows online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.computation.event import Event
from repro.computation.trace import Computation
from repro.exceptions import ClockError
from repro.online.protocol import SparseTimestamp


@dataclass(frozen=True)
class ChainClockResult:
    """Outcome of running the chain clock over a computation."""

    num_chains: int
    chain_assignment: Dict[Event, int]
    timestamps: Dict[Event, SparseTimestamp]

    @property
    def clock_size(self) -> int:
        """The chain clock's dimension (number of chains opened)."""
        return self.num_chains

    def happened_before(self, earlier: Event, later: Event) -> bool:
        return self.timestamps[earlier] < self.timestamps[later]

    def concurrent(self, a: Event, b: Event) -> bool:
        if a == b:
            return False
        return self.timestamps[a].concurrent_with(self.timestamps[b])


class ChainClock:
    """Online chain decomposition plus chain-indexed vector clocks."""

    def __init__(self) -> None:
        self._chain_last: List[Optional[Event]] = []
        self._chain_of_event: Dict[Event, int] = {}
        self._thread_clocks: Dict[object, SparseTimestamp] = {}
        self._object_clocks: Dict[object, SparseTimestamp] = {}
        self._timestamps: Dict[Event, SparseTimestamp] = {}
        self._last_thread_event: Dict[object, Event] = {}
        self._last_object_event: Dict[object, Event] = {}

    # ------------------------------------------------------------------
    @property
    def num_chains(self) -> int:
        return len(self._chain_last)

    def chain_of(self, event: Event) -> int:
        try:
            return self._chain_of_event[event]
        except KeyError:
            raise ClockError(f"event {event} has not been observed") from None

    def timestamp(self, event: Event) -> SparseTimestamp:
        try:
            return self._timestamps[event]
        except KeyError:
            raise ClockError(f"event {event} has not been observed") from None

    # ------------------------------------------------------------------
    def observe_event(self, event: Event) -> SparseTimestamp:
        """Assign ``event`` to a chain and timestamp it."""
        chain = self._pick_chain(event)
        if chain is None:
            chain = len(self._chain_last)
            self._chain_last.append(None)
        self._chain_last[chain] = event
        self._chain_of_event[event] = chain

        zero = SparseTimestamp()
        merged = self._thread_clocks.get(event.thread, zero).merged(
            self._object_clocks.get(event.obj, zero)
        )
        stamped = merged.incremented(f"chain-{chain}")
        self._thread_clocks[event.thread] = stamped
        self._object_clocks[event.obj] = stamped
        self._timestamps[event] = stamped
        self._last_thread_event[event.thread] = event
        self._last_object_event[event.obj] = event
        return stamped

    def _pick_chain(self, event: Event) -> Optional[int]:
        """A chain whose last element is an immediate predecessor of ``event``."""
        candidates = []
        previous_thread_event = self._last_thread_event.get(event.thread)
        if previous_thread_event is not None:
            candidates.append(previous_thread_event)
        previous_object_event = self._last_object_event.get(event.obj)
        if previous_object_event is not None and previous_object_event not in candidates:
            candidates.append(previous_object_event)
        for predecessor in candidates:
            chain = self._chain_of_event[predecessor]
            if self._chain_last[chain] is predecessor:
                return chain
        return None

    # ------------------------------------------------------------------
    def run(self, computation: Computation) -> ChainClockResult:
        """Process a whole computation (must be a fresh instance)."""
        if self._timestamps:
            raise ClockError("chain clock has already observed events; use a fresh one")
        for event in computation:
            self.observe_event(event)
        return ChainClockResult(
            num_chains=self.num_chains,
            chain_assignment=dict(self._chain_of_event),
            timestamps=dict(self._timestamps),
        )


def chain_clock_size(computation: Computation) -> int:
    """Number of chains the chain clock opens for ``computation``."""
    return ChainClock().run(computation).num_chains
