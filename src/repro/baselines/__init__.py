"""Baseline causality-tracking mechanisms used for comparison."""

from repro.baselines.chain_clock import ChainClock, ChainClockResult, chain_clock_size

__all__ = ["ChainClock", "ChainClockResult", "chain_clock_size"]
