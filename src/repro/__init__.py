"""repro: optimal mixed vector clocks for multithreaded systems.

A from-scratch reproduction of *"An Optimal Vector Clock Algorithm for
Multithreaded Systems"* (Zheng & Garg, ICDCS 2019).  The library tracks the
happened-before relation between operations of threads on shared objects
using vector clocks whose components are a *mix* of threads and objects:

* the offline algorithm (:mod:`repro.offline`) computes the provably
  smallest component set for a given computation via maximum bipartite
  matching and the König-Egerváry minimum vertex cover;
* the online mechanisms (:mod:`repro.online`) grow a component set on the
  fly as events are revealed (Naive / Random / Popularity / Hybrid);
* the classical thread-based and object-based clocks (:mod:`repro.core`)
  are available as baselines and special cases;
* the supporting substrates - bipartite graphs and matchings
  (:mod:`repro.graph`), the computation/poset model
  (:mod:`repro.computation`), a simulated concurrent runtime and a race
  detector (:mod:`repro.runtime`), the chain-clock baseline
  (:mod:`repro.baselines`) and the experiment harness
  (:mod:`repro.analysis`) - are all implemented here as well;
* the sharded execution engine (:mod:`repro.engine`) scales the
  streaming evaluation to millions of events: thread-affine stream
  sharding, a multiprocess executor, mergeable partial metrics and
  chunk-boundary checkpoint/resume, with results bit-identical across
  worker counts (seed discipline in :mod:`repro.seeds`).

Quickstart::

    from repro import paper_example_trace, timestamp_offline

    trace = paper_example_trace()
    stamped = timestamp_offline(trace)
    print(stamped.clock_size)          # 3 — smaller than min(4 threads, 4 objects)
    e, f = trace[0], trace[3]
    print(stamped.relation(e, f))      # "before"
"""

from repro.computation import (
    Computation,
    ComputationBuilder,
    Event,
    HappenedBefore,
    Operation,
    paper_example_trace,
)
from repro.core import (
    ClockComponents,
    Timestamp,
    TimestampedComputation,
    VectorClockProtocol,
    timestamp_with_mixed_clock,
    timestamp_with_object_clock,
    timestamp_with_thread_clock,
)
from repro.exceptions import (
    AmbiguousTimestampError,
    ClockError,
    ComponentError,
    ComputationError,
    GraphError,
    MatchingError,
    OnlineMechanismError,
    ReproError,
    VertexCoverError,
)
from repro.graph import (
    BipartiteGraph,
    hopcroft_karp_matching,
    minimum_vertex_cover,
    nonuniform_bipartite,
    paper_example_graph,
    uniform_bipartite,
)
from repro.offline import (
    OfflineResult,
    optimal_clock_size,
    optimal_components_for_computation,
    optimal_components_for_graph,
    timestamp_offline,
)
from repro.online import (
    HybridMechanism,
    NaiveMechanism,
    OnlineClockProtocol,
    PopularityMechanism,
    RandomMechanism,
)

__version__ = "1.0.0"

__all__ = [
    "AmbiguousTimestampError",
    "BipartiteGraph",
    "ClockComponents",
    "ClockError",
    "ComponentError",
    "Computation",
    "ComputationBuilder",
    "ComputationError",
    "Event",
    "GraphError",
    "HappenedBefore",
    "HybridMechanism",
    "MatchingError",
    "NaiveMechanism",
    "OfflineResult",
    "OnlineClockProtocol",
    "OnlineMechanismError",
    "Operation",
    "PopularityMechanism",
    "RandomMechanism",
    "ReproError",
    "Timestamp",
    "TimestampedComputation",
    "VectorClockProtocol",
    "VertexCoverError",
    "hopcroft_karp_matching",
    "minimum_vertex_cover",
    "nonuniform_bipartite",
    "optimal_clock_size",
    "optimal_components_for_computation",
    "optimal_components_for_graph",
    "paper_example_graph",
    "paper_example_trace",
    "timestamp_offline",
    "timestamp_with_mixed_clock",
    "timestamp_with_object_clock",
    "timestamp_with_thread_clock",
    "uniform_bipartite",
    "__version__",
]
