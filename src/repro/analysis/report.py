"""Rendering sweep results as plain-text tables and series.

The paper presents its evaluation as line plots (Figs. 4-7).  Since the
benchmark harness runs in a terminal, each figure is regenerated as (a) a
table with one row per x value and one column per mechanism, and (b) an
ASCII sparkline-style series summary, both of which are what EXPERIMENTS.md
records.  Nothing here depends on plotting libraries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.experiments import SweepResult
from repro.analysis.metrics import crossover_point


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for index, cells in enumerate(rendered):
        line = "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_sweep(result: SweepResult, include_offline: bool = True) -> str:
    """Render a :class:`SweepResult` the way EXPERIMENTS.md records figures."""
    columns = [result.x_label, *result.mechanisms]
    rows = result.as_rows()
    if include_offline and rows and "offline" in rows[0]:
        columns.append("offline")
    header = (
        f"{result.name}  (trials per point: {result.trials})"
    )
    return header + "\n" + format_table(rows, columns=columns)


def sweep_crossovers(result: SweepResult, baseline: str = "naive") -> Dict[str, float]:
    """Where each non-baseline mechanism stops beating the baseline.

    Mirrors the thresholds the paper reads off Figs. 4-5 ("when the density
    of graph exceeds a certain threshold, their performance becomes worse
    than Naive").
    """
    xs = result.xs
    baseline_series = result.series(baseline)
    crossovers: Dict[str, float] = {}
    for mechanism in result.mechanisms:
        if mechanism == baseline:
            continue
        crossovers[mechanism] = crossover_point(
            xs, result.series(mechanism), baseline_series
        )
    return crossovers


def format_series(label: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """One series as `label: (x, y) (x, y) ...`, used in benchmark output."""
    points = " ".join(f"({x:g}, {y:.1f})" for x, y in zip(xs, ys))
    return f"{label}: {points}"


def format_comparison_table(table: Mapping[str, Mapping[str, object]]) -> str:
    """Render the scenario-comparison mapping (workload -> mechanism -> size)."""
    rows = []
    for name, metrics in table.items():
        row = {"workload": name}
        row.update(metrics)
        rows.append(row)
    return format_table(rows)
