"""Small statistics helpers used by the experiment harness and reports.

The paper's figures plot the *final vector clock size* of each mechanism,
averaged over random graphs.  We keep the statistics dependency-free
(mean, standard deviation, confidence half-width via the normal
approximation) so the harness runs anywhere; numpy is only used by the
benchmarks for convenience, never required here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of one metric over repeated trials.

    When built through :func:`summarize`, the sorted sample is retained
    in :attr:`sorted_values`, which unlocks the order statistics
    (:attr:`median`, :meth:`percentile`).  Ratio trajectories are heavily
    skewed (a handful of early burn-in events can dwarf the steady-state
    tail), so mean ± CI alone misrepresents them.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    sorted_values: Tuple[float, ...] = ()

    @property
    def stderr(self) -> float:
        """Standard error of the mean (0 for a single trial)."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the ~95% confidence interval (normal approximation)."""
        return z * self.stderr

    @property
    def median(self) -> float:
        """The 50th percentile of the summarised sample."""
        return self.percentile(50.0)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) via linear interpolation.

        Requires the summary to carry its sample (:func:`summarize` keeps
        it; hand-built instances may not), because order statistics cannot
        be reconstructed from the moments alone.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.sorted_values:
            raise ValueError(
                "this SummaryStats carries no sample values; "
                "build it with summarize() to enable percentiles"
            )
        if len(self.sorted_values) == 1:
            return self.sorted_values[0]
        rank = (p / 100.0) * (len(self.sorted_values) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return self.sorted_values[low]
        fraction = rank - low
        return (
            self.sorted_values[low] * (1.0 - fraction)
            + self.sorted_values[high] * fraction
        )

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.confidence_halfwidth():.2f} (n={self.count})"


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for a sequence of trial values."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarise an empty sequence")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return SummaryStats(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        sorted_values=tuple(data),
    )


@dataclass(frozen=True)
class MergeableStats:
    """Moment statistics that combine associatively across partial runs.

    :class:`SummaryStats` keeps its sorted sample, which is exactly right
    for a few hundred sweep trials and exactly wrong for a million-event
    sharded run: partial results must travel between worker processes and
    merge in O(1), not O(samples).  This class keeps only the running
    moments (count, mean, M2 = sum of squared deviations) plus min/max,
    merged with Chan et al.'s parallel update - the standard mergeable
    summary for distributed aggregation.

    Determinism contract: merging is exact for ``count``/``minimum``/
    ``maximum`` and floating-point for ``mean``/``m2``, so two runs that
    merge the *same* partials in the *same* order agree bit-for-bit
    (this is what makes ``--jobs 1`` and ``--jobs N`` engine runs
    identical - the merge tree is fixed by shard and chunk structure, not
    by worker scheduling).  Different chunkings of the same sample stream
    agree only up to float rounding, as with any non-associative float
    accumulation.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def merge(self, other: "MergeableStats") -> "MergeableStats":
        """Combine two partials (Chan's parallel moments update)."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * (other.count / count)
        m2 = self.m2 + other.m2 + delta * delta * (self.count * other.count / count)
        return MergeableStats(
            count=count,
            mean=mean,
            m2=m2,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def std(self) -> float:
        """Sample standard deviation (Bessel-corrected, 0 below 2 samples)."""
        if self.count <= 1:
            return 0.0
        return math.sqrt(max(self.m2, 0.0) / (self.count - 1))

    def to_summary(self) -> SummaryStats:
        """Downgrade to :class:`SummaryStats` (without order statistics).

        The result supports mean/std/CI but not :attr:`SummaryStats.median`
        or percentiles - those need the sample, which a mergeable partial
        deliberately does not carry.
        """
        if self.count == 0:
            raise ValueError("cannot summarise an empty MergeableStats")
        return SummaryStats(
            count=self.count,
            mean=self.mean,
            std=self.std,
            minimum=self.minimum,
            maximum=self.maximum,
        )


class QuantileSketch:
    """Mergeable quantile summary (t-digest style, stdlib-only).

    :class:`MergeableStats` restored mean/std at million-event scale but
    surrendered the order statistics: medians and tail percentiles need
    the sample, and a mergeable partial deliberately does not carry it.
    This sketch carries a *compressed* sample instead - at most
    ``~2 * compression`` centroids ``(mean, weight)``, with centroid
    capacity shrinking towards the distribution's tails (the t-digest
    scale function ``k(q) = compression * (asin(2q - 1) / pi + 1/2)``),
    so extreme percentiles stay sharp while the bulk is summarised
    coarsely.  ``update`` is amortised O(1) (values buffer until the next
    compression), ``merge`` is O(centroids); both are deterministic pure
    functions of the inserted multiset *and the merge/chunk structure* -
    a fixed merge tree (the engine's chunks-then-shards order) therefore
    yields bit-identical sketches across worker counts, which is what
    lets the engine fingerprint include sketch-derived percentiles.
    Different chunkings agree only approximately, like any t-digest;
    ``count`` / ``minimum`` / ``maximum`` are exact under every
    bracketing, and quantile estimates stay within the digest's rank
    accuracy (the associativity property test pins both).

    Treat instances frozen into a
    :class:`~repro.engine.results.SeriesFragment` as immutable: ``merge``
    returns a new sketch and never mutates its operands.
    """

    __slots__ = ("compression", "count", "minimum", "maximum", "_centroids", "_buffer")

    def __init__(self, compression: int = 64) -> None:
        if compression < 4:
            raise ValueError(f"compression must be >= 4, got {compression}")
        self.compression = compression
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._centroids: List[Tuple[float, int]] = []
        self._buffer: List[float] = []

    @classmethod
    def from_values(
        cls, values: Iterable[float], compression: int = 64
    ) -> "QuantileSketch":
        sketch = cls(compression)
        for value in values:
            sketch.update(value)
        return sketch

    # -- building -----------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one value (amortised O(1))."""
        value = float(value)
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._buffer.append(value)
        if len(self._buffer) >= self.compression:
            self._flush()

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combine two sketches into a new one (both operands untouched)."""
        if self.compression != other.compression:
            raise ValueError(
                f"cannot merge sketches with compressions {self.compression} "
                f"and {other.compression}"
            )
        merged = QuantileSketch(self.compression)
        merged.count = self.count + other.count
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        self._flush()
        other._flush()
        merged._centroids = self._compress(
            self._centroids + other._centroids, merged.count
        )
        return merged

    def _flush(self) -> None:
        """Fold buffered values into the centroid list."""
        if not self._buffer:
            return
        pending = [(value, 1) for value in self._buffer]
        self._buffer = []
        self._centroids = self._compress(self._centroids + pending, self.count)

    def _scale(self, q: float) -> float:
        """The t-digest scale function ``k(q)`` (monotone, tail-steep)."""
        q = min(1.0, max(0.0, q))
        return self.compression * (math.asin(2.0 * q - 1.0) / math.pi + 0.5)

    def _compress(
        self, centroids: List[Tuple[float, int]], total: int
    ) -> List[Tuple[float, int]]:
        """Greedy left-to-right re-clustering bounded by the scale function.

        Deterministic: centroids are sorted by ``(mean, weight)`` and
        scanned once; a neighbour is absorbed iff the combined cluster
        still spans less than one unit of ``k(q)``.
        """
        if not centroids:
            return []
        ordered = sorted(centroids)
        compressed: List[Tuple[float, int]] = []
        mean, weight = ordered[0]
        seen = 0.0  # weight strictly before the current cluster
        limit = self._scale(0.0) + 1.0
        for next_mean, next_weight in ordered[1:]:
            if self._scale((seen + weight + next_weight) / total) <= limit:
                # Weighted mean; weights are ints so only the mean rounds.
                combined = weight + next_weight
                mean += (next_mean - mean) * (next_weight / combined)
                weight = combined
            else:
                compressed.append((mean, weight))
                seen += weight
                limit = self._scale(seen / total) + 1.0
                mean, weight = next_mean, next_weight
        compressed.append((mean, weight))
        return compressed

    # -- querying -----------------------------------------------------------
    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) estimate via centroid interpolation."""
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError("cannot query an empty QuantileSketch")
        self._flush()
        if p == 0.0:
            return self.minimum
        if p == 100.0:
            return self.maximum
        target = (p / 100.0) * self.count
        # Centroid i notionally spans the rank interval centred at
        # cumulative-weight-so-far + weight/2; interpolate between
        # neighbouring centres, clamped by the exact extremes.
        seen = 0.0
        previous_centre = 0.0
        previous_mean = self.minimum
        for mean, weight in self._centroids:
            centre = seen + weight / 2.0
            if target <= centre:
                span = centre - previous_centre
                fraction = (target - previous_centre) / span if span else 0.0
                return previous_mean + (mean - previous_mean) * fraction
            seen += weight
            previous_centre = centre
            previous_mean = mean
        span = self.count - previous_centre
        fraction = (target - previous_centre) / span if span else 1.0
        return previous_mean + (self.maximum - previous_mean) * fraction

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def __eq__(self, other: object) -> bool:
        """Value equality over the flushed centroid state.

        Two sketches built from the same inserts through the same
        chunk/merge structure compare equal - the property the engine's
        ``--jobs N == --jobs 1`` partial-result assertion relies on.
        """
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        self._flush()
        other._flush()
        return (
            self.compression == other.compression
            and self.count == other.count
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and self._centroids == other._centroids
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._flush()
        return (
            f"QuantileSketch(count={self.count}, centroids={len(self._centroids)}, "
            f"min={self.minimum}, max={self.maximum})"
        )


class RunningStats:
    """Mutable single-pass accumulator producing a :class:`MergeableStats`.

    The hot-path companion: per-event updates mutate in place (Welford),
    and :meth:`freeze` emits the immutable mergeable snapshot at chunk
    boundaries.  Kept separate from :class:`MergeableStats` so the frozen
    value that travels between processes stays hashable and immutable.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def freeze(self) -> MergeableStats:
        return MergeableStats(
            count=self.count,
            mean=self.mean,
            m2=self.m2,
            minimum=self.minimum,
            maximum=self.maximum,
        )


def summarize_by_key(trials: Sequence[Mapping[str, float]]) -> Dict[str, SummaryStats]:
    """Summarise a list of per-trial metric dicts key by key.

    Keys missing from some trials are summarised over the trials that do
    contain them.
    """
    collected: Dict[str, List[float]] = {}
    for trial in trials:
        for key, value in trial.items():
            collected.setdefault(key, []).append(float(value))
    return {key: summarize(values) for key, values in collected.items()}


def relative_reduction(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` relative to ``baseline``.

    ``0.3`` means "30% smaller than the baseline".  Returns ``0.0`` when the
    baseline is zero (no meaningful reduction can be expressed).
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline


def competitive_ratio_trajectory(
    online_sizes: Sequence[float], offline_sizes: Sequence[float]
) -> List[float]:
    """Pointwise ratio of an online clock-size trajectory to the optimum.

    ``result[i] = online_sizes[i] / offline_sizes[i]`` - how far above the
    per-event offline optimum a mechanism sits after the ``i``-th revealed
    event.  This is the competitive-ratio-over-time series enabled by the
    incremental optimum trajectory (Figs. 6-7 extension); the paper's
    single competitive-ratio number is ``result[-1]``.

    A zero optimum (possible only before any edge is revealed) is treated
    as ratio ``1.0``: both sizes are necessarily zero there.
    """
    if len(online_sizes) != len(offline_sizes):
        raise ValueError("online and offline trajectories must have equal length")
    return [
        online / offline if offline else 1.0
        for online, offline in zip(online_sizes, offline_sizes)
    ]


def crossover_point(
    xs: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """The first x at which series ``a`` stops being below series ``b``.

    Used to locate the density / node-count thresholds the paper discusses
    (where Random/Popularity stop beating Naive).  Returns ``math.inf`` if
    ``a`` stays below ``b`` over the whole range.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("all three sequences must have the same length")
    for x, a, b in zip(xs, series_a, series_b):
        if a >= b:
            return x
    return math.inf
