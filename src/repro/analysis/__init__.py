"""Experiment harness, statistics and report rendering."""

from repro.analysis.experiments import (
    EXTENDED_MECHANISMS,
    PAPER_MECHANISMS,
    SweepPoint,
    SweepResult,
    competitive_ratio_over_time,
    density_sweep,
    node_sweep,
    scenario_comparison,
)
from repro.analysis.metrics import (
    MergeableStats,
    QuantileSketch,
    RunningStats,
    SummaryStats,
    competitive_ratio_trajectory,
    crossover_point,
    relative_reduction,
    summarize,
    summarize_by_key,
)
from repro.analysis.ratio_sweep import (
    RatioCell,
    RatioSweepResult,
    format_ratio_sweep,
    ratio_sweep,
)
from repro.analysis.report import (
    format_comparison_table,
    format_series,
    format_sweep,
    format_table,
    sweep_crossovers,
)

__all__ = [
    "EXTENDED_MECHANISMS",
    "MergeableStats",
    "PAPER_MECHANISMS",
    "QuantileSketch",
    "RatioCell",
    "RunningStats",
    "RatioSweepResult",
    "SummaryStats",
    "SweepPoint",
    "SweepResult",
    "competitive_ratio_over_time",
    "competitive_ratio_trajectory",
    "crossover_point",
    "density_sweep",
    "format_comparison_table",
    "format_ratio_sweep",
    "format_series",
    "format_sweep",
    "format_table",
    "node_sweep",
    "ratio_sweep",
    "relative_reduction",
    "scenario_comparison",
    "summarize",
    "summarize_by_key",
    "sweep_crossovers",
]
