"""Burn-in vs steady-state competitive-ratio sweeps over streaming scenarios.

The ROADMAP asks *when* each online mechanism falls behind the offline
optimum, not just by how much at the end of a run.  The answer splits a
run into two regimes:

* **burn-in** - the first ``burn_in`` revealed events, where the optimum
  is still tiny and a single premature component commitment produces
  large ratios;
* **steady state** - the last ``tail`` revealed events, where (under a
  sliding window) the live graph has reached its stationary shape and
  the ratio measures the mechanism's persistent overhead.

:func:`ratio_sweep` runs a grid over densities x sizes for each
registered ``stream`` scenario: every cell streams mechanisms and the
dynamic offline optimum through
:func:`~repro.online.simulator.compare_mechanisms_on_stream` in a single
pass (no reveal list is ever materialised), computes the pointwise
competitive-ratio trajectory, and summarises the first-``burn_in`` and
last-``tail`` samples - pooled across trials - with the full
:class:`~repro.analysis.metrics.SummaryStats` (so medians and
percentiles are available, not just mean ± CI; ratio tails are skewed).

Scenarios that emit their own expire events (``expires=True``, e.g.
thread churn) run unwindowed; insert-only scenarios get the sweep's
sliding window imposed on top.  The full mechanism lifecycle flows
through every cell: expire events reach the mechanisms (so the adaptive
mechanisms of :mod:`repro.online.adaptive` retire dead components) and
``epoch`` adds a counter-based epoch tick every that-many inserts on top
of any markers the stream itself emits.  Alongside the two ratio
regimes, each cell reports the *steady-state live clock size* per
mechanism (and for the offline optimum) - the number that stays bounded
for window-aware mechanisms and grows monotonically for append-only
ones.

Parallelism and seeding: each (scenario, density, size, trial) stream is
an independent task, dispatched through the sharded execution engine's
:func:`~repro.engine.executor.execute_tasks` backend when ``jobs > 1``.
Every task derives its stream seed and its per-mechanism seeds from the
sweep's one ``base_seed`` via :func:`repro.seeds.derive_seed` paths, and
samples are pooled in fixed grid order, so the sweep's output is
bit-identical for every ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    EXTENDED_MECHANISMS,
    MechanismFactory,
    PAPER_MECHANISMS,
)
from repro.analysis.metrics import (
    SummaryStats,
    competitive_ratio_trajectory,
    summarize,
)
from repro.analysis.report import format_table
from repro.computation.registry import REGISTRY, STREAM, Scenario
from repro.computation.streams import as_stream_event, sliding_window
from repro.core.kernel import (
    default_backend_override,
    resolve_backend,
    set_default_backend,
)
from repro.exceptions import ExperimentError, ScenarioError
from repro.obs.registry import active as _metrics_active
from repro.obs.registry import span as _metrics_span
from repro.online.adaptive import LifecycleClockDriver
from repro.online.simulator import (
    OFFLINE_LABEL,
    compare_mechanisms_on_stream,
    seed_mechanism_factories,
)
from repro.seeds import derive_seed


@dataclass(frozen=True)
class RatioCell:
    """One grid cell: per-mechanism ratio and live-clock-size statistics.

    ``burn_in`` / ``steady`` summarise the competitive-ratio samples of
    the two regimes; ``steady_clock`` summarises the *live clock sizes*
    over the steady-state tail, keyed by mechanism label plus an
    ``"offline"`` entry for the windowed optimum - the pairing that shows
    whether a mechanism's state stays bounded or merely its ratio does.
    """

    scenario: str
    density: float
    size: int
    burn_in: Mapping[str, SummaryStats]
    steady: Mapping[str, SummaryStats]
    steady_clock: Mapping[str, SummaryStats]


@dataclass(frozen=True)
class RatioSweepResult:
    """A full ratio sweep: the grid axes plus one :class:`RatioCell` per point."""

    scenarios: Tuple[str, ...]
    densities: Tuple[float, ...]
    sizes: Tuple[int, ...]
    mechanisms: Tuple[str, ...]
    window: int
    burn_in_events: int
    steady_tail_events: int
    num_events: int
    trials: int
    cells: Tuple[RatioCell, ...]
    epoch: Optional[int] = None

    def cells_for(self, scenario: str) -> Tuple[RatioCell, ...]:
        """The grid cells of one scenario, in sweep order."""
        return tuple(cell for cell in self.cells if cell.scenario == scenario)


@dataclass(frozen=True)
class _TrialTask:
    """One independent cell-trial: everything a worker needs, picklable."""

    scenario: str
    density: float
    size: int
    trial: int
    labels: Tuple[str, ...]
    window: int
    burn_in: int
    tail: int
    num_events: int
    base_seed: int
    epoch: Optional[int] = None
    batch_size: Optional[int] = None
    backend: Optional[str] = None


#: Per-label outcome of one trial: burn-in ratios, steady ratios, steady
#: live clock sizes.
_TrialSamples = Dict[str, Tuple[List[float], List[float], List[float]]]


def _trial_samples(
    task: _TrialTask,
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
) -> _TrialSamples:
    """Run one cell-trial; per label the (burn-in, steady, size) samples.

    ``mechanisms`` is only passed on the in-process path (custom factories
    are not picklable by name); workers resolve ``task.labels`` against
    :data:`~repro.analysis.experiments.EXTENDED_MECHANISMS` instead.
    """
    chosen: Mapping[str, MechanismFactory] = (
        mechanisms
        if mechanisms is not None
        else {label: EXTENDED_MECHANISMS[label] for label in task.labels}
    )
    if task.backend is not None:
        # Pin the kernel backend for the duration of the trial.  A ratio
        # is a size quotient, so the comparison leg alone would leave the
        # pinned backend idle; the dense-stamp leg below mints a real
        # timestamp per insert through a LifecycleClockDriver so the
        # selection does measurable timestamping work (kernel batching,
        # extension, epoch rotation).  Verdict bit-identity across
        # backends means the pin can never change a sweep number.  The
        # prior override is restored afterwards, so in-process (jobs=1)
        # sweeps do not leak the selection into the caller's process.
        previous = default_backend_override()
        set_default_backend(task.backend)
        try:
            samples = _trial_samples_inner(task, chosen)
            _dense_stamp_leg(task, chosen)
            return samples
        finally:
            set_default_backend(previous)
    return _trial_samples_inner(task, chosen)


def _trial_samples_inner(
    task: _TrialTask, chosen: Mapping[str, MechanismFactory]
) -> _TrialSamples:
    scenario = REGISTRY.get(task.scenario, kind=STREAM)
    trial_root = derive_seed(
        task.base_seed, task.scenario, task.density, task.size, task.trial
    )
    events = scenario.build(
        task.size,
        task.size,
        task.density,
        task.num_events,
        seed=derive_seed(trial_root, "stream"),
    )
    factories = seed_mechanism_factories(
        dict(chosen), derive_seed(trial_root, "mechanisms")
    )
    results = compare_mechanisms_on_stream(
        events,
        factories,
        include_offline=True,
        window=None if scenario.expires else task.window,
        epoch=task.epoch,
        batch_size=task.batch_size,
    )
    offline_sizes = results[OFFLINE_LABEL].size_trajectory
    samples: _TrialSamples = {}
    for label in task.labels:
        sizes = results[label].size_trajectory
        ratios = competitive_ratio_trajectory(sizes, offline_sizes)
        samples[label] = (
            ratios[: task.burn_in],
            ratios[-task.tail :],
            [float(s) for s in sizes[-task.tail :]],
        )
    samples[OFFLINE_LABEL] = (
        [],
        [],
        [float(s) for s in offline_sizes[-task.tail :]],
    )
    return samples


def _dense_stamp_leg(
    task: _TrialTask, chosen: Mapping[str, MechanismFactory]
) -> None:
    """Mint one dense timestamp per insert through the pinned backend.

    Runs only when the trial pins a backend: the trial's stream is
    regenerated (same seed, same events, same imposed window) and driven
    through a :class:`~repro.online.adaptive.LifecycleClockDriver` built
    on the first selected mechanism, so every insert mints a timestamp,
    every appended component extends the kernel and every retirement or
    epoch boundary rotates it - the timestamping workload ``--backend``
    exists to exercise.  The leg writes nothing into the trial's samples
    (sweep numbers stay bit-identical with and without it); its
    footprint is wall-clock plus the ``sweep.stamps`` counter and the
    kernel / rotation telemetry the driver already emits.
    """
    scenario = REGISTRY.get(task.scenario, kind=STREAM)
    trial_root = derive_seed(
        task.base_seed, task.scenario, task.density, task.size, task.trial
    )
    events = scenario.build(
        task.size,
        task.size,
        task.density,
        task.num_events,
        seed=derive_seed(trial_root, "stream"),
    )
    if not scenario.expires:
        events = sliding_window(events, task.window)
    label = task.labels[0]
    factory = seed_mechanism_factories(
        {label: chosen[label]}, derive_seed(trial_root, "stamps")
    )[label]
    driver = LifecycleClockDriver(factory())
    inserts = 0
    for item in events:
        event = as_stream_event(item)
        if event.is_epoch:
            driver.end_epoch()
        elif event.is_insert:
            inserts += 1
            driver.observe(event.thread, event.obj)
            if task.epoch is not None and inserts % task.epoch == 0:
                driver.end_epoch()
        else:
            driver.expire(event.thread, event.obj)
    registry = _metrics_active()
    if registry is not None:
        registry.add("sweep.stamps", inserts)


def _run_trial_task(task: _TrialTask) -> _TrialSamples:
    """Module-level pool entry point (labels resolved worker-side)."""
    return _trial_samples(task)


def ratio_sweep(
    scenarios: Optional[Sequence[str]] = None,
    densities: Sequence[float] = (0.05, 0.2),
    sizes: Sequence[int] = (20, 40),
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    trials: int = 3,
    window: int = 200,
    burn_in: int = 50,
    tail: int = 50,
    num_events: Optional[int] = None,
    base_seed: int = 2019,
    jobs: int = 1,
    epoch: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    batch_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> RatioSweepResult:
    """Sweep burn-in / steady-state competitive ratios over a stream grid.

    Parameters
    ----------
    scenarios:
        Names of registered ``stream`` scenarios; defaults to every one in
        the registry.
    densities, sizes:
        The grid axes: each stream runs with ``size`` threads, ``size``
        objects and the given density knob.
    mechanisms:
        Seeded mechanism factories as in the classic sweeps; defaults to
        the paper's three (:data:`~repro.analysis.experiments.PAPER_MECHANISMS`).
        Custom factories run in-process only: with ``jobs > 1`` the
        mechanism set must stay registered-by-name (worker processes
        resolve labels, not closures) - select registered mechanisms with
        ``labels`` instead.
    labels:
        Mutually exclusive with ``mechanisms``: names from
        :data:`~repro.analysis.experiments.EXTENDED_MECHANISMS` (e.g.
        ``["popularity", "adaptive-popularity"]``).  Label sets work with
        any ``jobs`` value because workers resolve them by name.
    trials:
        Independent streams per cell; ratio samples are pooled across
        trials before summarisation.
    window:
        Sliding-window length imposed on insert-only scenarios
        (self-expiring scenarios run unwindowed).
    burn_in, tail:
        How many leading / trailing revealed events feed the two summaries.
    num_events:
        Inserts per stream; defaults to ``max(burn_in + tail, 4 * window)``
        so the tail is sampled well past the first window turnover.
    jobs:
        Worker processes for the independent cell-trials; results are
        identical for every value (see the module docstring).
    epoch:
        Deliver an epoch tick to every mechanism after this many inserts
        (on top of any markers the stream emits).  ``None`` leaves only
        the stream's own markers.
    batch_size:
        Consume each trial's stream through the chunked pipeline
        (``observe_batch`` on runs of up to this many inserts) instead of
        per-event calls.  Bit-identical results; wall-clock only.
    backend:
        Kernel backend name pinned in every worker for the duration of
        its trials (``python`` / ``numpy``; ``None`` keeps the process
        default).  Validated up front, so a ``numpy`` request without
        numpy fails here rather than inside a worker.  Pinning also
        enables the dense-stamp leg: each trial re-drives its stream
        through a :class:`~repro.online.adaptive.LifecycleClockDriver`
        minting a timestamp per insert, so the selected backend does
        real timestamping work instead of idling behind a size quotient
        (sweep numbers are bit-identical either way).
    """
    if mechanisms is not None and labels is not None:
        raise ExperimentError("pass either mechanisms or labels, not both")
    if labels is not None:
        unknown = [label for label in labels if label not in EXTENDED_MECHANISMS]
        if unknown:
            raise ExperimentError(
                f"unknown mechanism labels: {', '.join(map(repr, unknown))} "
                f"(expected from: {', '.join(sorted(EXTENDED_MECHANISMS))})"
            )
        chosen_mechanisms = {
            label: EXTENDED_MECHANISMS[label] for label in labels
        }
    else:
        chosen_mechanisms = dict(mechanisms or PAPER_MECHANISMS)
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if window < 1:
        raise ExperimentError("window must be >= 1")
    if burn_in < 1 or tail < 1:
        raise ExperimentError("burn_in and tail must be >= 1")
    if epoch is not None and epoch < 1:
        raise ExperimentError("epoch must be >= 1")
    if batch_size is not None and batch_size < 1:
        raise ExperimentError("batch_size must be >= 1")
    if backend is not None:
        try:
            resolve_backend(backend)
        except Exception as error:
            raise ExperimentError(str(error)) from None
    if not densities or not sizes:
        raise ExperimentError("densities and sizes must not be empty")
    if jobs > 1 and mechanisms is not None:
        raise ExperimentError(
            "custom mechanism factories cannot cross process boundaries; "
            "run with jobs=1, use the default mechanism set, or select "
            "registered mechanisms with labels=..."
        )
    events_per_trial = (
        num_events if num_events is not None else max(burn_in + tail, 4 * window)
    )
    if events_per_trial < burn_in + tail:
        raise ExperimentError(
            f"num_events ({events_per_trial}) must cover burn_in + tail "
            f"({burn_in + tail})"
        )
    try:
        chosen_scenarios: List[Scenario] = [
            REGISTRY.get(name, kind=STREAM)
            for name in (scenarios if scenarios is not None else REGISTRY.names(STREAM))
        ]
    except ScenarioError as error:
        raise ExperimentError(str(error)) from None
    if not chosen_scenarios:
        raise ExperimentError("no stream scenarios selected")

    chosen_labels = tuple(chosen_mechanisms)
    grid: List[Tuple[Scenario, float, int]] = [
        (scenario, density, int(size))
        for scenario in chosen_scenarios
        for density in densities
        for size in sizes
    ]
    tasks: List[_TrialTask] = [
        _TrialTask(
            scenario=scenario.name,
            density=density,
            size=size,
            trial=trial,
            labels=chosen_labels,
            window=window,
            burn_in=burn_in,
            tail=tail,
            num_events=events_per_trial,
            base_seed=base_seed,
            epoch=epoch,
            batch_size=batch_size,
            backend=backend,
        )
        for scenario, density, size in grid
        for trial in range(trials)
    ]
    # The trial leg dominates the sweep's wall clock; the span (a no-op
    # when no registry is installed) gives `sweep ratio --metrics` its
    # cost breakdown without touching a single sweep number.
    with _metrics_span("sweep.trials", tasks=len(tasks), jobs=jobs):
        if mechanisms is not None:
            outcomes = [_trial_samples(task, chosen_mechanisms) for task in tasks]
        else:
            # Deferred import: analysis is a lower layer than the engine;
            # only this execution path reaches up to its executor backend.
            from repro.engine.executor import execute_tasks

            outcomes = execute_tasks(_run_trial_task, tasks, jobs=jobs)

    cells: List[RatioCell] = []
    clock_labels = chosen_labels + (OFFLINE_LABEL,)
    with _metrics_span("sweep.summarise", cells=len(grid)):
        for cell_index, (scenario, density, size) in enumerate(grid):
            burn_samples: Dict[str, List[float]] = {
                label: [] for label in chosen_labels
            }
            steady_samples: Dict[str, List[float]] = {
                label: [] for label in chosen_labels
            }
            clock_samples: Dict[str, List[float]] = {
                label: [] for label in clock_labels
            }
            for trial in range(trials):
                outcome = outcomes[cell_index * trials + trial]
                for label in chosen_labels:
                    burn, steady, clock = outcome[label]
                    burn_samples[label].extend(burn)
                    steady_samples[label].extend(steady)
                    clock_samples[label].extend(clock)
                clock_samples[OFFLINE_LABEL].extend(outcome[OFFLINE_LABEL][2])
            cells.append(
                RatioCell(
                    scenario=scenario.name,
                    density=density,
                    size=size,
                    burn_in={
                        label: summarize(values)
                        for label, values in burn_samples.items()
                    },
                    steady={
                        label: summarize(values)
                        for label, values in steady_samples.items()
                    },
                    steady_clock={
                        label: summarize(values)
                        for label, values in clock_samples.items()
                    },
                )
            )
    return RatioSweepResult(
        scenarios=tuple(scenario.name for scenario in chosen_scenarios),
        densities=tuple(densities),
        sizes=tuple(int(size) for size in sizes),
        mechanisms=chosen_labels,
        window=window,
        burn_in_events=burn_in,
        steady_tail_events=tail,
        num_events=events_per_trial,
        trials=trials,
        cells=tuple(cells),
        epoch=epoch,
    )


def format_ratio_sweep(result: RatioSweepResult) -> str:
    """Render one table per scenario: ratios and live sizes per mechanism.

    Each mechanism gets a ``burn`` and a ``steady`` column showing
    ``mean (median)`` of the pooled ratio samples - the pairing that makes
    the over-commitment story legible at a glance (a mechanism with high
    burn-in but near-1 steady state recovers; one high in both never does)
    - plus a ``size`` column with the mean steady-state live clock size.
    The trailing ``offline:size`` column is the windowed optimum's own
    steady size, the floor every mechanism is measured against.
    """
    sections: List[str] = []
    for name in result.scenarios:
        scenario = REGISTRY.get(name, kind=STREAM)
        regime = (
            "self-expiring (no window)"
            if scenario.expires
            else f"window {result.window}"
        )
        if result.epoch is not None:
            regime += f", epoch every {result.epoch}"
        elif scenario.epochs:
            regime += ", stream-marked epochs"
        header = (
            f"ratio-sweep-{name}  ({regime}, {result.num_events} events/trial, "
            f"burn-in first {result.burn_in_events}, steady last "
            f"{result.steady_tail_events}, trials per cell: {result.trials})"
        )
        rows = []
        for cell in result.cells_for(name):
            row: Dict[str, object] = {"density": cell.density, "nodes": cell.size}
            for label in result.mechanisms:
                burn = cell.burn_in[label]
                steady = cell.steady[label]
                row[f"{label}:burn"] = f"{burn.mean:.2f} ({burn.median:.2f})"
                row[f"{label}:steady"] = f"{steady.mean:.2f} ({steady.median:.2f})"
                row[f"{label}:size"] = f"{cell.steady_clock[label].mean:.1f}"
            row["offline:size"] = f"{cell.steady_clock[OFFLINE_LABEL].mean:.1f}"
            rows.append(row)
        sections.append(header + "\n" + format_table(rows))
    return "\n\n".join(sections)
