"""Burn-in vs steady-state competitive-ratio sweeps over streaming scenarios.

The ROADMAP asks *when* each online mechanism falls behind the offline
optimum, not just by how much at the end of a run.  The answer splits a
run into two regimes:

* **burn-in** - the first ``burn_in`` revealed events, where the optimum
  is still tiny and a single premature component commitment produces
  large ratios;
* **steady state** - the last ``tail`` revealed events, where (under a
  sliding window) the live graph has reached its stationary shape and
  the ratio measures the mechanism's persistent overhead.

:func:`ratio_sweep` runs a grid over densities x sizes for each
registered ``stream`` scenario: every cell streams mechanisms and the
dynamic offline optimum through
:func:`~repro.online.simulator.compare_mechanisms_on_stream` in a single
pass (no reveal list is ever materialised), computes the pointwise
competitive-ratio trajectory, and summarises the first-``burn_in`` and
last-``tail`` samples - pooled across trials - with the full
:class:`~repro.analysis.metrics.SummaryStats` (so medians and
percentiles are available, not just mean ± CI; ratio tails are skewed).

Scenarios that emit their own expire events (``expires=True``, e.g.
thread churn) run unwindowed; insert-only scenarios get the sweep's
sliding window imposed on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.experiments import MechanismFactory, PAPER_MECHANISMS
from repro.analysis.metrics import (
    SummaryStats,
    competitive_ratio_trajectory,
    summarize,
)
from repro.analysis.report import format_table
from repro.computation.registry import REGISTRY, STREAM, Scenario
from repro.exceptions import ExperimentError, ScenarioError
from repro.online.simulator import OFFLINE_LABEL, compare_mechanisms_on_stream


@dataclass(frozen=True)
class RatioCell:
    """One grid cell: per-mechanism burn-in and steady-state ratio stats."""

    scenario: str
    density: float
    size: int
    burn_in: Mapping[str, SummaryStats]
    steady: Mapping[str, SummaryStats]


@dataclass(frozen=True)
class RatioSweepResult:
    """A full ratio sweep: the grid axes plus one :class:`RatioCell` per point."""

    scenarios: Tuple[str, ...]
    densities: Tuple[float, ...]
    sizes: Tuple[int, ...]
    mechanisms: Tuple[str, ...]
    window: int
    burn_in_events: int
    steady_tail_events: int
    num_events: int
    trials: int
    cells: Tuple[RatioCell, ...]

    def cells_for(self, scenario: str) -> Tuple[RatioCell, ...]:
        """The grid cells of one scenario, in sweep order."""
        return tuple(cell for cell in self.cells if cell.scenario == scenario)


def ratio_sweep(
    scenarios: Optional[Sequence[str]] = None,
    densities: Sequence[float] = (0.05, 0.2),
    sizes: Sequence[int] = (20, 40),
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    trials: int = 3,
    window: int = 200,
    burn_in: int = 50,
    tail: int = 50,
    num_events: Optional[int] = None,
    base_seed: int = 2019,
) -> RatioSweepResult:
    """Sweep burn-in / steady-state competitive ratios over a stream grid.

    Parameters
    ----------
    scenarios:
        Names of registered ``stream`` scenarios; defaults to every one in
        the registry.
    densities, sizes:
        The grid axes: each stream runs with ``size`` threads, ``size``
        objects and the given density knob.
    mechanisms:
        Seeded mechanism factories as in the classic sweeps; defaults to
        the paper's three (:data:`~repro.analysis.experiments.PAPER_MECHANISMS`).
    trials:
        Independent streams per cell; ratio samples are pooled across
        trials before summarisation.
    window:
        Sliding-window length imposed on insert-only scenarios
        (self-expiring scenarios run unwindowed).
    burn_in, tail:
        How many leading / trailing revealed events feed the two summaries.
    num_events:
        Inserts per stream; defaults to ``max(burn_in + tail, 4 * window)``
        so the tail is sampled well past the first window turnover.
    """
    chosen_mechanisms = dict(mechanisms or PAPER_MECHANISMS)
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if window < 1:
        raise ExperimentError("window must be >= 1")
    if burn_in < 1 or tail < 1:
        raise ExperimentError("burn_in and tail must be >= 1")
    if not densities or not sizes:
        raise ExperimentError("densities and sizes must not be empty")
    events_per_trial = (
        num_events if num_events is not None else max(burn_in + tail, 4 * window)
    )
    if events_per_trial < burn_in + tail:
        raise ExperimentError(
            f"num_events ({events_per_trial}) must cover burn_in + tail "
            f"({burn_in + tail})"
        )
    try:
        chosen_scenarios: List[Scenario] = [
            REGISTRY.get(name, kind=STREAM)
            for name in (scenarios if scenarios is not None else REGISTRY.names(STREAM))
        ]
    except ScenarioError as error:
        raise ExperimentError(str(error)) from None
    if not chosen_scenarios:
        raise ExperimentError("no stream scenarios selected")

    cells: List[RatioCell] = []
    for scenario_index, scenario in enumerate(chosen_scenarios):
        for density_index, density in enumerate(densities):
            for size_index, size in enumerate(sizes):
                burn_samples: Dict[str, List[float]] = {
                    label: [] for label in chosen_mechanisms
                }
                steady_samples: Dict[str, List[float]] = {
                    label: [] for label in chosen_mechanisms
                }
                for trial in range(trials):
                    seed = (
                        base_seed
                        + 1_000_000 * scenario_index
                        + 100_000 * density_index
                        + 10_000 * size_index
                        + trial
                    )
                    events = scenario.build(
                        size, size, density, events_per_trial, seed=seed
                    )
                    factories = {
                        label: (lambda factory=factory: factory(seed + 1))
                        for label, factory in chosen_mechanisms.items()
                    }
                    results = compare_mechanisms_on_stream(
                        events,
                        factories,
                        include_offline=True,
                        window=None if scenario.expires else window,
                    )
                    offline_sizes = results[OFFLINE_LABEL].size_trajectory
                    for label in chosen_mechanisms:
                        ratios = competitive_ratio_trajectory(
                            results[label].size_trajectory, offline_sizes
                        )
                        burn_samples[label].extend(ratios[:burn_in])
                        steady_samples[label].extend(ratios[-tail:])
                cells.append(
                    RatioCell(
                        scenario=scenario.name,
                        density=density,
                        size=size,
                        burn_in={
                            label: summarize(values)
                            for label, values in burn_samples.items()
                        },
                        steady={
                            label: summarize(values)
                            for label, values in steady_samples.items()
                        },
                    )
                )
    return RatioSweepResult(
        scenarios=tuple(scenario.name for scenario in chosen_scenarios),
        densities=tuple(densities),
        sizes=tuple(int(size) for size in sizes),
        mechanisms=tuple(chosen_mechanisms),
        window=window,
        burn_in_events=burn_in,
        steady_tail_events=tail,
        num_events=events_per_trial,
        trials=trials,
        cells=tuple(cells),
    )


def format_ratio_sweep(result: RatioSweepResult) -> str:
    """Render one table per scenario: burn-in vs steady-state per mechanism.

    Each mechanism gets a ``burn`` and a ``steady`` column showing
    ``mean (median)`` of the pooled ratio samples - the pairing that makes
    the over-commitment story legible at a glance (a mechanism with high
    burn-in but near-1 steady state recovers; one high in both never does).
    """
    sections: List[str] = []
    for name in result.scenarios:
        scenario = REGISTRY.get(name, kind=STREAM)
        regime = (
            "self-expiring (no window)"
            if scenario.expires
            else f"window {result.window}"
        )
        header = (
            f"ratio-sweep-{name}  ({regime}, {result.num_events} events/trial, "
            f"burn-in first {result.burn_in_events}, steady last "
            f"{result.steady_tail_events}, trials per cell: {result.trials})"
        )
        rows = []
        for cell in result.cells_for(name):
            row: Dict[str, object] = {"density": cell.density, "nodes": cell.size}
            for label in result.mechanisms:
                burn = cell.burn_in[label]
                steady = cell.steady[label]
                row[f"{label}:burn"] = f"{burn.mean:.2f} ({burn.median:.2f})"
                row[f"{label}:steady"] = f"{steady.mean:.2f} ({steady.median:.2f})"
            rows.append(row)
        sections.append(header + "\n" + format_table(rows))
    return "\n\n".join(sections)
