"""The experiment harness: the parameter sweeps behind Figs. 4-7.

Each experiment in the paper's Section V is a sweep over one parameter
(graph density or node count) of the average final vector clock size of
several mechanisms on randomly generated thread-object bipartite graphs.
This module implements those sweeps once, so every benchmark and example
calls the same code path:

* :func:`density_sweep`  - Fig. 4 (online mechanisms) and Fig. 6 (offline vs
  online) when ``include_offline=True``;
* :func:`node_sweep`     - Fig. 5 and Fig. 7 analogously;
* :func:`scenario_comparison` - extra: clock sizes on the structured runtime
  workloads (producer/consumer, work stealing, ...).

Results come back as :class:`SweepResult`, a list of
:class:`SweepPoint` rows that the report module renders as the tables
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import (
    SummaryStats,
    competitive_ratio_trajectory,
    summarize,
)
from repro.computation.registry import GRAPH, REGISTRY
from repro.computation.trace import Computation
from repro.exceptions import ExperimentError, ScenarioError
from repro.graph.bipartite import BipartiteGraph
from repro.offline.algorithm import optimal_clock_size
from repro.online.adaptive import (
    EpochRotatingHybridMechanism,
    WindowedPopularityMechanism,
)
from repro.online.base import OnlineMechanism
from repro.online.hybrid import HybridMechanism
from repro.online.naive import NaiveMechanism
from repro.online.popularity import PopularityMechanism
from repro.online.random_choice import RandomMechanism
from repro.online.simulator import compare_mechanisms, reveal_order, run_mechanism

MechanismFactory = Callable[[int], OnlineMechanism]
GraphFactory = Callable[[int], BipartiteGraph]

#: The three mechanisms of the paper's Figs. 4-5.  Each factory receives the
#: trial seed so stochastic mechanisms draw independent randomness per trial.
PAPER_MECHANISMS: Dict[str, MechanismFactory] = {
    "naive": lambda seed: NaiveMechanism(),
    "random": lambda seed: RandomMechanism(seed=seed),
    "popularity": lambda seed: PopularityMechanism(),
}

#: Every registered-by-name mechanism: the paper's three, the hybrid of
#: Section V's closing recommendation, and the window-aware adaptive
#: mechanisms (the labels the ratio sweep and the sharded engine resolve
#: worker-side, so they must all live in this one table).
EXTENDED_MECHANISMS: Dict[str, MechanismFactory] = {
    **PAPER_MECHANISMS,
    "hybrid": lambda seed: HybridMechanism(),
    "adaptive-popularity": lambda seed: WindowedPopularityMechanism(),
    # The flagged windowed-degree variant (default-off in the class): the
    # per-event choice reads live-window degree counters instead of the
    # append-only revealed graph, so popularity under drift tracks the
    # live regime instead of chasing dead history.
    "adaptive-popularity-windowed": lambda seed: WindowedPopularityMechanism(
        windowed_degrees=True
    ),
    # The cost-model retirement policy: a dead component is retired only
    # once the slot rent it has paid (ticks spent dead) beats its decayed
    # re-add score, cutting rotation *frequency* on churny streams at the
    # price of a somewhat larger steady clock.
    "adaptive-popularity-cost": lambda seed: WindowedPopularityMechanism(
        retirement="cost"
    ),
    "epoch-hybrid": lambda seed: EpochRotatingHybridMechanism(),
}


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a sweep: per-mechanism clock size statistics."""

    x: float
    sizes: Mapping[str, SummaryStats]
    offline: Optional[SummaryStats] = None

    def mean_size(self, mechanism: str) -> float:
        if mechanism == "offline":
            if self.offline is None:
                raise ExperimentError("sweep did not include the offline optimum")
            return self.offline.mean
        return self.sizes[mechanism].mean


@dataclass(frozen=True)
class SweepResult:
    """A full sweep: the x-axis label, its values, and one row per value."""

    name: str
    x_label: str
    points: Tuple[SweepPoint, ...]
    mechanisms: Tuple[str, ...]
    trials: int

    @property
    def xs(self) -> Tuple[float, ...]:
        return tuple(point.x for point in self.points)

    def series(self, mechanism: str) -> Tuple[float, ...]:
        """The mean clock size of one mechanism across the sweep."""
        return tuple(point.mean_size(mechanism) for point in self.points)

    def as_rows(self) -> List[Dict[str, float]]:
        """Flat row dicts (one per x value), convenient for table rendering."""
        rows = []
        for point in self.points:
            row: Dict[str, float] = {self.x_label: point.x}
            for mechanism in self.mechanisms:
                row[mechanism] = point.sizes[mechanism].mean
            if point.offline is not None:
                row["offline"] = point.offline.mean
            rows.append(row)
        return rows


def _sweep(
    name: str,
    x_label: str,
    x_values: Sequence[float],
    graph_factory: Callable[[float, int], BipartiteGraph],
    mechanisms: Mapping[str, MechanismFactory],
    trials: int,
    base_seed: int,
    include_offline: bool,
    include_nominal_naive: bool = True,
) -> SweepResult:
    if trials < 1:
        raise ExperimentError("trials must be >= 1")
    if not x_values:
        raise ExperimentError("x_values must not be empty")
    points: List[SweepPoint] = []
    labels = list(mechanisms)
    if include_nominal_naive:
        # The paper plots Naive as a flat line at n: a thread-based clock has
        # one slot per thread of the system whether or not the thread ever
        # acts.  The "naive" mechanism series above counts only threads that
        # actually appear, so both views are reported.
        labels.append("thread_clock")
    for x_index, x in enumerate(x_values):
        per_mechanism: Dict[str, List[int]] = {label: [] for label in labels}
        offline_sizes: List[int] = []
        for trial in range(trials):
            seed = base_seed + 10_000 * x_index + trial
            graph = graph_factory(x, seed)
            order = reveal_order(graph, seed=seed + 1)
            for label, factory in mechanisms.items():
                result = run_mechanism(factory(seed + 2), order)
                per_mechanism[label].append(result.final_size)
            if include_nominal_naive:
                per_mechanism["thread_clock"].append(graph.num_threads)
            if include_offline:
                offline_sizes.append(optimal_clock_size(graph))
        points.append(
            SweepPoint(
                x=x,
                sizes={label: summarize(values) for label, values in per_mechanism.items()},
                offline=summarize(offline_sizes) if include_offline else None,
            )
        )
    return SweepResult(
        name=name,
        x_label=x_label,
        points=tuple(points),
        mechanisms=tuple(labels),
        trials=trials,
    )


def density_sweep(
    densities: Sequence[float],
    num_threads: int = 50,
    num_objects: int = 50,
    scenario: str = "uniform",
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    trials: int = 5,
    base_seed: int = 2019,
    include_offline: bool = False,
) -> SweepResult:
    """Sweep graph density at fixed size (Figs. 4 and 6).

    Parameters
    ----------
    scenario:
        ``"uniform"`` or ``"nonuniform"`` - the two scenarios of Section V.
    include_offline:
        Add the offline optimum series (turns a Fig.-4-style sweep into a
        Fig.-6-style one).
    """
    generator = _scenario_generator(scenario)

    def graph_factory(density: float, seed: int) -> BipartiteGraph:
        return generator(num_threads, num_objects, density, seed)

    return _sweep(
        name=f"density-sweep-{scenario}",
        x_label="density",
        x_values=list(densities),
        graph_factory=graph_factory,
        mechanisms=dict(mechanisms or PAPER_MECHANISMS),
        trials=trials,
        base_seed=base_seed,
        include_offline=include_offline,
    )


def node_sweep(
    node_counts: Sequence[int],
    density: float = 0.05,
    scenario: str = "uniform",
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    trials: int = 5,
    base_seed: int = 2019,
    include_offline: bool = False,
) -> SweepResult:
    """Sweep the number of nodes per side at fixed density (Figs. 5 and 7)."""
    generator = _scenario_generator(scenario)

    def graph_factory(nodes: float, seed: int) -> BipartiteGraph:
        count = int(nodes)
        return generator(count, count, density, seed)

    return _sweep(
        name=f"node-sweep-{scenario}",
        x_label="nodes_per_side",
        x_values=[float(n) for n in node_counts],
        graph_factory=graph_factory,
        mechanisms=dict(mechanisms or PAPER_MECHANISMS),
        trials=trials,
        base_seed=base_seed,
        include_offline=include_offline,
    )


def scenario_comparison(
    computations: Mapping[str, Computation],
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    base_seed: int = 2019,
) -> Dict[str, Dict[str, int]]:
    """Clock sizes of every mechanism (plus baselines) on concrete traces.

    Used by the extended evaluation on structured runtime workloads.  The
    returned mapping is ``workload name -> {mechanism: clock size}`` and
    always includes ``"offline"`` (optimum), ``"thread_clock"`` (= number of
    threads) and ``"object_clock"`` (= number of objects).
    """
    chosen = dict(mechanisms or PAPER_MECHANISMS)
    table: Dict[str, Dict[str, int]] = {}
    for name, computation in computations.items():
        graph = computation.bipartite_graph()
        row: Dict[str, int] = {
            "thread_clock": computation.num_threads,
            "object_clock": computation.num_objects,
            "offline": optimal_clock_size(graph),
        }
        for label, factory in chosen.items():
            mechanism = factory(base_seed)
            result = run_mechanism(mechanism, computation.to_pairs())
            row[label] = result.final_size
        table[name] = row
    return table


def competitive_ratio_over_time(
    graph: BipartiteGraph,
    mechanisms: Optional[Mapping[str, MechanismFactory]] = None,
    seed: int = 2019,
) -> Dict[str, List[float]]:
    """Per-event competitive ratio of each mechanism on one reveal order.

    Runs every mechanism and the incremental offline optimum on the same
    reveal order of ``graph`` and returns, per mechanism, the pointwise
    ratio of its clock-size trajectory to the optimum trajectory (see
    :func:`~repro.analysis.metrics.competitive_ratio_trajectory`).  This
    is the new over-time view of the Figs. 6-7 comparison: it shows *when*
    during a run each mechanism commits to components the optimum avoids,
    not just the final gap.
    """
    chosen = dict(mechanisms or PAPER_MECHANISMS)
    factories = {
        label: (lambda factory=factory: factory(seed)) for label, factory in chosen.items()
    }
    results = compare_mechanisms(graph, factories, seed=seed, include_offline=True)
    offline_sizes = results["offline"].size_trajectory
    return {
        label: competitive_ratio_trajectory(results[label].size_trajectory, offline_sizes)
        for label in chosen
    }


def _scenario_generator(scenario: str):
    """Resolve a graph-family scenario name through the scenario registry.

    The registry is the single source of workload truth (the CLI and the
    benchmarks resolve names through the same table); the lookup error is
    re-raised as :class:`ExperimentError` to keep this harness's error
    contract.
    """
    try:
        factory = REGISTRY.get(scenario, kind=GRAPH).factory
    except ScenarioError as error:
        raise ExperimentError(str(error)) from None
    return lambda n, m, density, seed: factory(n, m, density, seed=seed)
