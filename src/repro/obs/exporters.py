"""Render and serialise a :class:`~repro.obs.registry.MetricsRegistry`.

Four operator-facing views of one registry:

* :func:`format_summary` - the human table printed by the CLI;
* :func:`metrics_document` / :func:`write_metrics_json` - a single JSON
  document with counters, gauges, histogram percentiles and per-span
  aggregates (the shape ``engine run --metrics`` emits, and the block
  benchmarks fold into ``BENCH_<name>.json``);
* :func:`write_spans_jsonl` - an append-friendly JSONL event log, one
  object per metric or span;
* :func:`write_chrome_trace` - Chrome's ``chrome://tracing`` (about
  tracing / Perfetto) JSON array format, one complete-event per span,
  one process lane per registry origin.

This module is deliberately *not* imported by ``repro.obs.__init__``:
only operator surfaces (CLI, benchmarks, tests) import it, so result
paths never link against the read side even accidentally - and lint
rule C206 flags any result-path module that tries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.registry import MetricsRegistry

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "SUMMARY_PERCENTILES",
    "format_summary",
    "metrics_document",
    "write_chrome_trace",
    "write_metrics_json",
    "write_spans_jsonl",
]

#: Version of the :func:`metrics_document` envelope.
METRICS_SCHEMA_VERSION = 1

#: Percentiles reported for every histogram, in document key order.
SUMMARY_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def _histogram_row(name: str, sketch: Any) -> Dict[str, Any]:
    """One histogram's document entry: count, extrema, percentiles."""
    row: Dict[str, Any] = {
        "count": sketch.count,
        "min": sketch.minimum,
        "max": sketch.maximum,
    }
    for p in SUMMARY_PERCENTILES:
        key = f"p{p:g}"
        row[key] = sketch.percentile(p) if sketch.count else None
    return row


def _derived(counters: Dict[str, int]) -> Dict[str, Any]:
    """Ratios the raw counters imply but readers should not recompute."""
    hits = counters.get("kernel.array_cache.hits", 0)
    misses = counters.get("kernel.array_cache.misses", 0)
    total = hits + misses
    python_events = counters.get("kernel.batch.python_events", 0)
    array_events = counters.get("kernel.batch.array_events", 0)
    batched = python_events + array_events
    delta = counters.get("clock.rotation.delta", 0)
    replay = counters.get("clock.rotation.replay", 0)
    rotations = delta + replay
    return {
        "kernel_cache_hit_rate": (hits / total) if total else None,
        "kernel_array_path_share": (array_events / batched) if batched else None,
        "rotation_delta_share": (delta / rotations) if rotations else None,
    }


def metrics_document(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as one JSON-safe document (see module docstring).

    Keys are deterministic (sorted within every section) so two runs
    that observed the same counts diff cleanly; latency-derived values
    naturally vary run to run.
    """
    counters = registry.counters()
    histograms = {
        name: _histogram_row(name, sketch) for name, sketch in registry.histograms()
    }
    spans = {
        name: {"count": count, "total_s": total, "max_s": peak}
        for name, (count, total, peak) in registry.span_totals().items()
    }
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "origin": registry.origin,
        "counters": counters,
        "gauges": registry.gauges(),
        "histograms": histograms,
        "spans": spans,
        "derived": _derived(counters),
    }


def format_summary(registry: MetricsRegistry) -> str:
    """The registry as aligned text tables, one section per metric kind.

    Empty sections are omitted; an entirely empty registry renders as a
    single placeholder line so callers can print unconditionally.
    """
    # Deferred import: repro.analysis eagerly pulls the experiment
    # harness, which this module must not load before a registry is
    # actually being rendered.
    from repro.analysis.report import format_table

    document = metrics_document(registry)
    sections: List[str] = []
    counters = document["counters"]
    if counters:
        rows = [{"counter": name, "value": counters[name]} for name in counters]
        sections.append("counters:\n" + format_table(rows))
    gauges = document["gauges"]
    if gauges:
        rows = [{"gauge": name, "value": f"{gauges[name]:g}"} for name in gauges]
        sections.append("gauges:\n" + format_table(rows))
    histograms = document["histograms"]
    if histograms:
        rows = []
        for name in histograms:
            entry = histograms[name]
            row: Dict[str, Any] = {"histogram": name, "count": entry["count"]}
            for p in SUMMARY_PERCENTILES:
                key = f"p{p:g}"
                value = entry[key]
                row[key] = "-" if value is None else f"{value:.6f}"
            rows.append(row)
        sections.append("histograms (seconds):\n" + format_table(rows))
    spans = document["spans"]
    if spans:
        rows = [
            {
                "span": name,
                "count": spans[name]["count"],
                "total_s": f"{spans[name]['total_s']:.3f}",
                "max_s": f"{spans[name]['max_s']:.3f}",
            }
            for name in spans
        ]
        sections.append("spans:\n" + format_table(rows))
    derived = {
        name: value
        for name, value in document["derived"].items()
        if value is not None
    }
    if derived:
        rows = [
            {"derived": name, "value": f"{derived[name]:.4f}"} for name in derived
        ]
        sections.append("derived:\n" + format_table(rows))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def write_metrics_json(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write :func:`metrics_document` to ``path`` as indented JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = metrics_document(registry)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


def write_spans_jsonl(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the registry as a JSONL event log, one object per line.

    The first line is a ``meta`` record (schema, origin, the wall-clock
    anchor of the span timeline); counters, gauges and histograms follow
    in sorted order, then every span in recorded order.  The shape is
    collector-friendly: each line stands alone.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = metrics_document(registry)
    lines: List[str] = [
        json.dumps(
            {
                "type": "meta",
                "schema": METRICS_SCHEMA_VERSION,
                "origin": registry.origin,
                "wall_epoch": registry.wall_epoch,
            },
            sort_keys=True,
        )
    ]
    for name, value in document["counters"].items():
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": value}, sort_keys=True
            )
        )
    for name, value in document["gauges"].items():
        lines.append(
            json.dumps({"type": "gauge", "name": name, "value": value}, sort_keys=True)
        )
    for name, entry in document["histograms"].items():
        record = {"type": "histogram", "name": name}
        record.update(entry)
        lines.append(json.dumps(record, sort_keys=True))
    for origin, name, start, duration, attrs in registry.span_records():
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "origin": origin,
                    "name": name,
                    "start_s": start,
                    "duration_s": duration,
                    "attrs": dict(attrs),
                },
                sort_keys=True,
            )
        )
    target.write_text("\n".join(lines) + "\n")
    return target


def write_chrome_trace(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the registry's spans as a Chrome trace-event JSON document.

    Loadable in ``chrome://tracing`` or Perfetto.  Every span becomes a
    complete event (``ph: "X"``); registry origins map to process lanes
    (named via ``process_name`` metadata events), so engine runs show
    the main process and each shard worker side by side.  Timestamps are
    microseconds since the importing registry's wall epoch - merged
    worker spans were already re-anchored by ``merge_snapshot``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    records = registry.span_records()
    origins: List[str] = []
    for origin, _name, _start, _duration, _attrs in records:
        if origin not in origins:
            origins.append(origin)
    lanes = {origin: index for index, origin in enumerate(sorted(origins))}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": lane,
            "tid": 0,
            "args": {"name": origin},
        }
        for origin, lane in sorted(lanes.items())
    ]
    for origin, name, start, duration, attrs in records:
        events.append(
            {
                "name": name,
                "cat": "span",
                "ph": "X",
                "pid": lanes[origin],
                "tid": 0,
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "args": dict(attrs),
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"origin": registry.origin, "schema": METRICS_SCHEMA_VERSION},
    }
    target.write_text(json.dumps(document, sort_keys=True) + "\n")
    return target
