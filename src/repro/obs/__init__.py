"""Deterministic telemetry: the write-side surface of :mod:`repro.obs`.

Re-exports the registry primitives only.  The exporters (summary table,
metrics JSON, JSONL log, Chrome trace) live in :mod:`repro.obs.exporters`
and must be imported explicitly by operator surfaces - keeping this
package importable from the kernel without touching the analysis layer,
and keeping the telemetry *read* side out of every module that merely
instruments (lint rule C206 polices the exceptions).
"""

from repro.obs.registry import (
    HISTOGRAM_COMPRESSION,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    active,
    add,
    disable,
    enable,
    gauge,
    install,
    observe,
    span,
)

__all__ = [
    "HISTOGRAM_COMPRESSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "active",
    "add",
    "disable",
    "enable",
    "gauge",
    "install",
    "observe",
    "span",
]
