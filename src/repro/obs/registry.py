"""Process-local telemetry: counters, gauges, latency histograms, spans.

The repo's determinism contract (``ROADMAP``, lint rule D104) bans
wall-clock reads from every module that can influence a result.  This
package is the one sanctioned home for them: instrumented code *writes*
observations into a :class:`MetricsRegistry` installed for the current
process, and only operator-facing surfaces (the CLI, benchmarks, the
exporters in :mod:`repro.obs.exporters`) ever *read* them back.  Lint
rule C206 enforces the read side; the D104 carve-out for ``src/repro/obs/``
covers the write side's clock anchor.  The slogan in the engine docs:
telemetry is observed, never observed-from.

Design constraints, in priority order:

* **Zero result influence.**  Nothing in this module returns information
  derived from a clock to its callers beyond the :class:`Span` duration,
  and no result-path module may read even that (rule C206).  Every
  instrumentation site is responsible for keeping its observable
  behaviour identical whether a registry is installed or not.
* **Near-zero disabled cost.**  The hot-path pattern is one module-level
  ``active()`` call per batch (not per event) followed by ``if registry
  is not None`` guards; the module-level helpers (:func:`add`,
  :func:`observe`, :func:`span`, ...) exist for cold paths where a
  single global read per call is already negligible.  :func:`span`
  returns a shared no-op context manager when disabled, so ``with
  span(...)`` costs two method calls and no clock read.
* **Import lightness.**  ``repro.core.kernel`` imports this module, and
  ``repro.analysis`` transitively imports the kernel - so this module
  must not import anything under ``repro`` at import time.  The
  histogram backend (:class:`~repro.analysis.metrics.QuantileSketch`)
  is imported lazily at first use.
* **Mergeability.**  Engine workers are spawned processes; each builds
  its own registry and ships a picklable :class:`MetricsSnapshot` back
  (see :mod:`repro.engine.telemetry`).  Counters sum, gauges carry
  per-origin keys, histograms merge sketch-exactly, and spans land on a
  common timeline anchored by each registry's wall epoch.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "HISTOGRAM_COMPRESSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "active",
    "add",
    "disable",
    "enable",
    "gauge",
    "install",
    "observe",
    "span",
]

#: t-digest compression of every latency histogram.  One shared value so
#: snapshots merge unconditionally (``QuantileSketch.merge`` requires
#: equal compressions).
HISTOGRAM_COMPRESSION = 64

#: One recorded span: ``(origin, name, start_s, duration_s, attrs)``.
#: ``start_s`` is seconds since the *owning registry's* creation for
#: local records, re-anchored onto the merging registry's timeline by
#: :meth:`MetricsRegistry.merge_snapshot`; ``attrs`` is a sorted tuple
#: of ``(key, value)`` pairs.
SpanRecord = Tuple[str, str, float, float, Tuple[Tuple[str, Any], ...]]


def _new_sketch() -> Any:
    """A fresh histogram backend.

    Imported lazily: ``repro.analysis`` transitively imports the kernel,
    which imports this module - a top-level import here would close the
    cycle.  By the time anything *observes* a latency, the interpreter
    is far past import time and the cycle cannot bite.
    """
    from repro.analysis.metrics import QuantileSketch

    return QuantileSketch(HISTOGRAM_COMPRESSION)


class MetricsSnapshot:
    """A picklable, registry-independent copy of one registry's state.

    Produced by :meth:`MetricsRegistry.snapshot` (typically in a worker
    process) and consumed by :meth:`MetricsRegistry.merge_snapshot` in
    the parent.  Plain attributes only, so the default pickle protocol
    carries it across a spawn boundary unchanged.
    """

    def __init__(
        self,
        origin: str,
        wall_epoch: float,
        counters: Dict[str, int],
        gauges: Dict[str, float],
        histograms: Dict[str, Any],
        spans: List[SpanRecord],
    ) -> None:
        self.origin = origin
        self.wall_epoch = wall_epoch
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms
        self.spans = spans


class Span:
    """One timed region; records itself into its registry on exit.

    ``duration`` is populated on ``__exit__`` so cold-path callers (the
    CLI's elapsed line) can reuse the measurement without a second clock
    read.  Result-path modules must not read it (rule C206).
    """

    __slots__ = ("name", "attrs", "duration", "_registry", "_start")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        attrs: Tuple[Tuple[str, Any], ...],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.duration = 0.0
        self._registry = registry
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration = time.perf_counter() - self._start
        self._registry.record_span(self.name, self._start, self.duration, self.attrs)
        return False


class _NullSpan:
    """The disabled-mode span: enters and exits without touching a clock."""

    __slots__ = ()

    #: Mirrors :attr:`Span.duration` so cold-path callers need no branch.
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: Shared no-op instance handed out by :func:`span` when disabled.
NULL_SPAN = _NullSpan()


def _sorted_attrs(attrs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalise span attributes: sorted, hashable-by-construction."""
    return tuple(sorted(attrs.items()))


class MetricsRegistry:
    """Counters, gauges, latency histograms and spans for one process.

    ``origin`` labels every span this registry records (``main`` for the
    driving process, ``shard-N`` for engine workers) and becomes the
    process lane in the Chrome trace export.  The two epochs taken at
    construction - one wall clock, one monotonic - anchor the span
    timeline: spans store starts relative to the monotonic epoch, and
    :meth:`merge_snapshot` uses the wall epochs to line up registries
    created in different processes.  This is the package's only wall
    clock read (the D104 carve-out; the value never reaches a result).
    """

    def __init__(self, origin: str = "main") -> None:
        self.origin = origin
        self.wall_epoch = time.time()
        self._perf_epoch = time.perf_counter()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Any] = {}
        self._spans: List[SpanRecord] = []

    # -- write API (instrumentation sites) --------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (created on first use)."""
        sketch = self._histograms.get(name)
        if sketch is None:
            sketch = self._histograms[name] = _new_sketch()
        sketch.update(float(value))

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one region under ``name``."""
        return Span(self, name, _sorted_attrs(attrs))

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Tuple[Tuple[str, Any], ...] = (),
    ) -> None:
        """Record an explicitly timed region.

        ``start`` is a raw ``time.perf_counter()`` reading taken by the
        caller; it is stored relative to this registry's monotonic epoch
        so records survive pickling into another process's timeline.
        """
        self._spans.append(
            (self.origin, name, start - self._perf_epoch, duration, tuple(attrs))
        )

    # -- read API (operator surfaces only; see lint rule C206) ------------

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name``."""
        return self._gauges.get(name, default)

    def counters(self) -> Dict[str, int]:
        """All counters, copied, in sorted-name order."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def gauges(self) -> Dict[str, float]:
        """All gauges, copied, in sorted-name order."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    def histogram(self, name: str) -> Optional[Any]:
        """The :class:`QuantileSketch` behind histogram ``name``, if any."""
        return self._histograms.get(name)

    def histograms(self) -> Iterator[Tuple[str, Any]]:
        """``(name, sketch)`` pairs in sorted-name order."""
        for name in sorted(self._histograms):
            yield name, self._histograms[name]

    def percentile(self, name: str, p: float) -> Optional[float]:
        """Percentile ``p`` (0-100) of histogram ``name``, if populated."""
        sketch = self._histograms.get(name)
        if sketch is None or sketch.count == 0:
            return None
        return sketch.percentile(p)

    def span_records(self) -> List[SpanRecord]:
        """Every recorded span, in recording/merge order."""
        return list(self._spans)

    def span_totals(self) -> Dict[str, Tuple[int, float, float]]:
        """Per span name: ``(count, total seconds, max seconds)``."""
        totals: Dict[str, Tuple[int, float, float]] = {}
        for _origin, name, _start, duration, _attrs in self._spans:
            count, total, peak = totals.get(name, (0, 0.0, 0.0))
            totals[name] = (count + 1, total + duration, max(peak, duration))
        return {name: totals[name] for name in sorted(totals)}

    def snapshot(self) -> MetricsSnapshot:
        """A picklable copy of everything recorded so far.

        Histogram sketches are handed over by reference: the intended
        protocol is snapshot-then-discard (a worker snapshots once, at
        the end of its task), and pickling deep-copies them anyway on
        the only path where the source registry outlives the call.
        """
        return MetricsSnapshot(
            origin=self.origin,
            wall_epoch=self.wall_epoch,
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms=dict(self._histograms),
            spans=list(self._spans),
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this registry.

        Counters sum; gauges overwrite (instrumentation keys gauges by
        origin - ``engine.shard[3].inserts`` - so cross-process keys are
        disjoint by construction); histograms merge sketch-exactly; the
        snapshot's spans are re-anchored from its wall epoch onto this
        registry's, keeping their origin label.  Merge order is the
        caller's responsibility - the engine merges in shard-id order so
        the combined registry is independent of worker scheduling.
        """
        for name in sorted(snap.counters):
            self.add(name, snap.counters[name])
        for name in sorted(snap.gauges):
            self._gauges[name] = snap.gauges[name]
        for name in sorted(snap.histograms):
            sketch = snap.histograms[name]
            mine = self._histograms.get(name)
            self._histograms[name] = sketch if mine is None else mine.merge(sketch)
        offset = snap.wall_epoch - self.wall_epoch
        for origin, name, start, duration, attrs in snap.spans:
            self._spans.append((origin, name, start + offset, duration, attrs))


#: The installed registry, or ``None`` when telemetry is disabled (the
#: common case - every instrumentation site's fast path).
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when telemetry is disabled.

    Hot loops call this once per batch, bind the result, and guard each
    observation with ``if registry is not None`` - the whole disabled
    cost is one global read per batch.
    """
    return _ACTIVE


def install(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` (or ``None``) and return the previous one.

    The save/restore primitive: wrappers that must not leak telemetry
    state (engine worker tasks, the CLI) install around their work and
    re-install the previous value in a ``finally``.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one by default) and return it."""
    chosen = registry if registry is not None else MetricsRegistry()
    install(chosen)
    return chosen


def disable() -> Optional[MetricsRegistry]:
    """Uninstall and return the current registry, if any."""
    return install(None)


def add(name: str, amount: int = 1) -> None:
    """Increment a counter on the installed registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.add(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the installed registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Update a histogram on the installed registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value)


def span(name: str, **attrs: Any) -> Any:
    """A timing context manager; the shared no-op span when disabled."""
    registry = _ACTIVE
    if registry is None:
        return NULL_SPAN
    return registry.span(name, **attrs)
