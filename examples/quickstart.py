#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the computation of Fig. 1 (four threads operating on four shared
objects), runs the offline optimal algorithm of Section III, and shows that

* the optimal mixed vector clock has only 3 components ({T2, O2, O3}),
  strictly fewer than the 4 a thread-based or object-based clock would need;
* the resulting timestamps order events exactly like Lamport's
  happened-before relation (Theorem 2).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    HappenedBefore,
    optimal_components_for_computation,
    paper_example_trace,
    timestamp_with_object_clock,
    timestamp_with_thread_clock,
)


def main() -> None:
    trace = paper_example_trace()
    print("The computation of Fig. 1 (one line per operation):")
    for event in trace:
        print(f"  {event.describe()}")

    # ------------------------------------------------------------------
    # Offline optimal mixed clock (Section III).
    # ------------------------------------------------------------------
    result = optimal_components_for_computation(trace)
    print("\nThread-object bipartite graph:",
          f"{result.graph.num_threads} threads,",
          f"{result.graph.num_objects} objects,",
          f"{result.graph.num_edges} edges")
    print("Maximum matching size:", len(result.matching))
    print("Minimum vertex cover / mixed clock components:",
          sorted(map(str, result.cover)))
    print("Mixed clock size:", result.clock_size,
          f"(thread clock would need {trace.num_threads},",
          f"object clock {trace.num_objects})")

    stamped = result.protocol().timestamp_computation(trace)
    print("\nTimestamps (compare with Fig. 3 of the paper):")
    print(stamped.format_table())

    # ------------------------------------------------------------------
    # Causality queries purely from timestamps (Theorem 2).
    # ------------------------------------------------------------------
    by_pair = {}
    for event in trace:
        by_pair.setdefault((event.thread, event.obj), event)
    t2_o1 = by_pair[("T2", "O1")]
    t3_o3 = by_pair[("T3", "O3")]
    t1_o2 = by_pair[("T1", "O2")]

    print("\nCausality queries answered from timestamps alone:")
    print(f"  {t2_o1} -> {t3_o3} ?", stamped.relation(t2_o1, t3_o3))
    print(f"  {t1_o2} vs {t3_o3} ?", stamped.relation(t1_o2, t3_o3))

    # Cross-check every pair against the happened-before oracle.
    oracle = HappenedBefore(trace)
    mismatches = sum(
        1
        for a in trace
        for b in trace
        if a != b and stamped.happened_before(a, b) != oracle.happened_before(a, b)
    )
    print("\nPairs where timestamps disagree with happened-before:", mismatches)

    # The classical clocks agree too - they are just bigger.
    thread_stamped = timestamp_with_thread_clock(trace)
    object_stamped = timestamp_with_object_clock(trace)
    print("Clock sizes - mixed:", stamped.clock_size,
          " thread-based:", thread_stamped.clock_size,
          " object-based:", object_stamped.clock_size)


if __name__ == "__main__":
    main()
