#!/usr/bin/env python3
"""Causal debugging: what could have influenced a suspicious event?

When a multithreaded program misbehaves, the first debugging question is
usually "which earlier operations could possibly have affected this one?".
With vector clock timestamps that question is answered by comparing
vectors: every event whose timestamp is strictly smaller is in the causal
past; everything else is provably irrelevant.

This example records a lock-hierarchy (bank transfer) workload, timestamps
it with the optimal mixed clock, picks one "suspicious" event and prints
its causal past and future, the set of concurrent events, and how much
smaller the mixed clock is than the classical alternatives.

Run with:  python examples/causal_debugging.py
"""

from __future__ import annotations

from repro.computation import lock_hierarchy_trace
from repro.offline import optimal_components_for_computation


def main() -> None:
    trace = lock_hierarchy_trace(
        num_threads=9, num_locks=2, num_accounts=4, transfers_per_thread=6, seed=99
    )
    result = optimal_components_for_computation(trace)
    stamped = result.protocol().timestamp_computation(trace)

    print("Workload: bank transfers guarded by a small lock hierarchy")
    print(f"  {trace.num_threads} threads, {trace.num_objects} objects,"
          f" {trace.num_events} operations")
    print(f"  optimal mixed clock: {result.clock_size} components"
          f" ({result.thread_component_count} threads +"
          f" {result.object_component_count} objects)")
    print(f"  classical clocks: {trace.num_threads} (thread-based)"
          f" / {trace.num_objects} (object-based)")

    # Pick a "suspicious" event: the last credit performed by teller-2.
    credits = [event for event in trace.thread_events("teller-2")
               if event.label.startswith("credit")]
    suspect = credits[-1]
    suspect_stamp = stamped[suspect]
    print(f"\nSuspicious event:\n  {suspect.describe()}\n  timestamp {suspect_stamp!r}")

    past = [e for e in trace if e != suspect and stamped.happened_before(e, suspect)]
    future = [e for e in trace if e != suspect and stamped.happened_before(suspect, e)]
    concurrent = [e for e in trace if e != suspect and stamped.concurrent(e, suspect)]

    print(f"\nCausal past ({len(past)} events could have influenced it); last five:")
    for event in past[-5:]:
        print(f"  {event.describe()}")
    print(f"\nCausal future ({len(future)} events it could have influenced); first five:")
    for event in future[:5]:
        print(f"  {event.describe()}")
    print(f"\nProvably unrelated (concurrent) events: {len(concurrent)}"
          f" of {trace.num_events - 1}")

    share = len(concurrent) / (trace.num_events - 1)
    print(f"\n{share:.0%} of the trace can be ruled out of the investigation"
          " just by comparing vector timestamps.")


if __name__ == "__main__":
    main()
