#!/usr/bin/env python3
"""Debugging application: happens-before data race detection.

The paper motivates causality tracking with debugging of parallel programs.
This example runs two versions of a small bank-transfer program on the
simulated concurrent runtime:

* a correct version in which every transfer holds a global lock, and
* a buggy version in which the audit log is updated outside the lock,

then analyses the recorded traces with the happens-before race detector and
reports, for the synchronisation skeleton of each trace, how many clock
components the paper's optimal mixed clock needs compared with a
conventional thread-indexed clock.

Run with:  python examples/race_detection.py
"""

from __future__ import annotations

from repro.runtime import ConcurrentSystem, acquire, detect_races, increment, release


def build_bank(num_tellers: int, transfers: int, buggy: bool) -> ConcurrentSystem:
    """A bank with one balance, one audit log and a global lock."""
    system = ConcurrentSystem()
    system.add_object("balance", 1_000)
    system.add_object("audit-log", 0)
    for teller in range(num_tellers):
        steps = []
        for _ in range(transfers):
            steps.append(acquire("bank-lock"))
            steps.append(increment("balance", 10))
            if not buggy:
                steps.append(increment("audit-log"))
            steps.append(release("bank-lock"))
            if buggy:
                # BUG: the audit log is updated after releasing the lock.
                steps.append(increment("audit-log"))
        system.add_thread(f"teller-{teller}", steps)
    return system


def analyse(title: str, buggy: bool) -> None:
    system = build_bank(num_tellers=4, transfers=10, buggy=buggy)
    execution = system.run(seed=2019)
    report = detect_races(execution.computation, sync_objects=execution.sync_objects)

    print(f"\n=== {title} ===")
    print("events recorded:      ", execution.num_events)
    print("final balance:        ", execution.final_values["balance"])
    print("final audit-log count:", execution.final_values["audit-log"])
    print("data races found:     ", report.race_count)
    for race in report.races[:3]:
        print("   ", race.describe())
    if report.race_count > 3:
        print(f"    ... and {report.race_count - 3} more on the same object")

    print("clock sizes for the synchronisation skeleton:")
    print("    thread-indexed clock:", report.thread_clock_size, "components")
    print("    optimal mixed clock: ", report.mixed_clock_size, "component(s)",
          f"({sorted(map(str, report.mixed_clock.cover))})")


def main() -> None:
    analyse("correct program (audit log inside the critical section)", buggy=False)
    analyse("buggy program (audit log outside the critical section)", buggy=True)
    print(
        "\nEvery teller synchronises through the single bank-lock, so the"
        "\nmixed clock needs one component where a per-thread clock needs four."
    )


if __name__ == "__main__":
    main()
