#!/usr/bin/env python3
"""Online monitoring: growing a mixed vector clock while events stream in.

A monitoring agent attached to a running program does not know the
thread-object interaction in advance, so it cannot run the offline
algorithm.  This example streams a producer/consumer workload event by
event through the three online mechanisms of Section IV (plus the Hybrid
recommended at the end of Section V), compares the clock sizes they end up
with against the offline optimum computed in hindsight, and uses the
Popularity-grown clock to answer live causality queries.

The second half switches to the *sliding-window* regime: events keep
arriving indefinitely, only recent history matters, and the offline
optimum (maintained incrementally by the dynamic matching engine) can
shrink again as hot objects drift out of the window - the gap an online
clock can never reclaim.

Run with:  python examples/online_monitoring.py
"""

from __future__ import annotations

from repro.computation import hot_object_drift_stream, producer_consumer_trace
from repro.engine import EngineConfig, run_engine
from repro.offline import optimal_clock_size
from repro.online import (
    OFFLINE_LABEL,
    HybridMechanism,
    NaiveMechanism,
    OnlineClockProtocol,
    PopularityMechanism,
    RandomMechanism,
    compare_mechanisms_on_stream,
    run_mechanism_on_computation,
)


def main() -> None:
    trace = producer_consumer_trace(
        num_producers=6, num_consumers=6, num_queues=2, items_per_producer=30, seed=7
    )
    print("Workload: producer/consumer,",
          f"{trace.num_threads} threads, {trace.num_objects} objects,",
          f"{trace.num_events} operations")

    # ------------------------------------------------------------------
    # Clock sizes: online mechanisms vs the offline optimum.
    # ------------------------------------------------------------------
    mechanisms = {
        "naive (always thread)": NaiveMechanism(),
        "random": RandomMechanism(seed=11),
        "popularity": PopularityMechanism(),
        "hybrid (popularity then naive)": HybridMechanism(),
    }
    print("\nFinal vector clock sizes after streaming all events online:")
    for label, mechanism in mechanisms.items():
        result = run_mechanism_on_computation(mechanism, trace)
        print(f"  {label:32s} {result.final_size:3d} components "
              f"({result.thread_components} threads + {result.object_components} objects)")
    optimum = optimal_clock_size(trace.bipartite_graph())
    print(f"  {'offline optimum (hindsight)':32s} {optimum:3d} components")
    print(f"  {'classical thread-based clock':32s} {trace.num_threads:3d} components")
    print(f"  {'classical object-based clock':32s} {trace.num_objects:3d} components")

    # ------------------------------------------------------------------
    # Live causality queries with the growing clock.
    # ------------------------------------------------------------------
    protocol = OnlineClockProtocol(PopularityMechanism())
    protocol.timestamp_computation(trace)

    enqueues = [e for e in trace if e.label.startswith("enqueue")]
    dequeues = [e for e in trace if e.label.startswith("dequeue")]
    first_enqueue, last_dequeue = enqueues[0], dequeues[-1]
    print("\nLive queries from the Popularity-grown clock "
          f"({protocol.clock_size} components):")
    print(f"  {first_enqueue.describe()}")
    print(f"  {last_dequeue.describe()}")
    if protocol.happened_before(first_enqueue, last_dequeue):
        relation = "happened before"
    elif protocol.concurrent(first_enqueue, last_dequeue):
        relation = "is concurrent with"
    else:
        relation = "happened after"
    print(f"  -> the first enqueue {relation} the last dequeue")

    concurrent_pairs = sum(
        1
        for i, a in enumerate(enqueues[:20])
        for b in enqueues[i + 1 : 20]
        if protocol.concurrent(a, b)
    )
    print(f"  concurrent pairs among the first 20 enqueues: {concurrent_pairs}")

    # ------------------------------------------------------------------
    # Sliding-window monitoring: a drifting hot set, a window of recent
    # events, and the dynamic offline optimum that can shrink again.
    # ------------------------------------------------------------------
    window, num_events = 60, 600
    stream = hot_object_drift_stream(16, 40, 0.1, num_events, seed=7)
    results = compare_mechanisms_on_stream(
        stream,
        {
            "naive": NaiveMechanism,
            "popularity": PopularityMechanism,
            "hybrid": HybridMechanism,
        },
        include_offline=True,
        window=window,
    )
    offline = results[OFFLINE_LABEL].size_trajectory
    print(f"\nSliding-window monitoring (hot-object drift, window {window}, "
          f"{num_events} events):")
    checkpoints = [window - 1, num_events // 2, num_events - 1]
    header = "".join(f"  @event {i + 1:4d}" for i in checkpoints)
    print(f"  {'series':14s}{header}")
    for label in ("naive", "popularity", "hybrid", OFFLINE_LABEL):
        sizes = results[label].size_trajectory
        cells = "".join(f"  {sizes[i]:11d}" for i in checkpoints)
        print(f"  {label:14s}{cells}")
    print(f"  windowed optimum over the run: min {min(offline)}, "
          f"max {max(offline)} - it shrinks after each drift, while the "
          "online clocks can only grow.")

    # ------------------------------------------------------------------
    # Scale-out: the same monitoring question answered by the sharded
    # execution engine.  Each shard owns a thread-affine sub-stream and
    # its own mechanisms + windowed optimum; worker count never changes
    # the merged numbers (the fingerprint is the proof - try jobs=4).
    # ------------------------------------------------------------------
    config = EngineConfig(
        scenario="hot-object-drift",
        num_threads=16,
        num_objects=40,
        density=0.1,
        num_events=num_events,
        seed=7,
        num_shards=4,
        chunk_size=200,
        window=window,
    )
    sharded = run_engine(config, jobs=1)
    print(f"\nSharded engine ({config.num_shards} shards, window {window}):")
    for label in ("naive", "popularity", OFFLINE_LABEL):
        finals = sharded.final_sizes(label)
        per_shard = ", ".join(f"s{s}={size}" for s, size in sorted(finals.items()))
        print(f"  {label:14s} final per shard: {per_shard}")
    print(f"  fingerprint (identical for any --jobs): "
          f"{sharded.fingerprint()[:16]}...")


if __name__ == "__main__":
    main()
